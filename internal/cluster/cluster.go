// Package cluster implements the worker side of the distributed MLSS
// execution sketched in §3.1 of the paper: "Since the simulations of root
// paths are independent, it is straightforward to parallelize MLSS on a
// group of machines ... We monitor the progress of simulations and
// synchronize counters on the machines periodically to produce a running
// estimate; the procedure stops until the estimate reaches the desired
// accuracy level."
//
// A Worker serves shard requests over net/rpc (stdlib, gob-encoded): it
// rebuilds the model locally from a registered factory, optionally pins it
// to a shipped live-state snapshot, simulates a range of root paths with
// g-MLSS bookkeeping, and returns the counters. The coordination side —
// fanning root ranges out, retrying dead workers, merging counters and
// stopping at the quality target — lives in internal/exec as the cluster
// execution backend, behind the same Executor seam the in-process backend
// implements. Determinism carries over: root path i draws from substream i
// regardless of which worker simulates it, so a cluster run returns
// bit-for-bit the same estimate as a single-machine run with the same
// seed.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/rpc"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// ModelFactory rebuilds a model and its named observers on a worker. The
// shape matches internal/serve's registry: processes are not serialisable
// (they may hold neural networks), so only names travel over the wire.
type ModelFactory func() (stochastic.Process, map[string]stochastic.Observer, error)

// Registry maps model names to factories. Workers must register every
// model a coordinator will reference.
type Registry map[string]ModelFactory

// ShardRequest asks a worker to simulate root paths [RootLo, RootHi).
//
//durlint:gobroot
type ShardRequest struct {
	Model    string
	Observer string // observer name; empty selects "value"
	// Start optionally pins the simulation to a live-state snapshot
	// instead of the model's canonical initial state — the standing-query
	// refresh path. The concrete State type must be gob-registered (see
	// internal/stochastic's registrations).
	Start      stochastic.State
	Beta       float64
	Horizon    int
	Boundaries []float64
	Ratio      int
	// Ratios optionally overrides Ratio per landing level (len must be
	// len(Boundaries) when set); batch covering plans ship their designed
	// per-level ratios here.
	Ratios []int
	Seed   uint64
	RootLo int64
	RootHi int64
	// GroupRoots fixes the bootstrap grouping by size: every group covers
	// exactly GroupRoots consecutive root indices, so group boundaries are
	// identical no matter how a logical root range was sharded across
	// workers. When 0, Groups is interpreted as a group count (the legacy
	// form, default 16).
	GroupRoots int
	Groups     int
}

// ShardReply carries the shard's counters back to the coordinator.
// Result.Agg doubles as the shard's plan-quality ledger delta: the
// coordinator folds replies in root-range order before booking, so
// cluster-side crossing statistics attribute exactly — no extra wire
// fields are needed.
//
//durlint:gobroot
type ShardReply struct {
	Result core.ShardResult
	// WorkerNanos is the worker's own measured simulation wall time.
	// Telemetry only: it rides back beside the counters for per-shard
	// attribution and never feeds the deterministic result.
	WorkerNanos int64
}

// Worker is the rpc service running on each machine.
type Worker struct {
	registry Registry
	workers  int // local simulation parallelism per shard
}

// NewWorker builds a worker that simulates each shard with the given
// local parallelism.
func NewWorker(registry Registry, localWorkers int) *Worker {
	if localWorkers < 1 {
		localWorkers = 1
	}
	return &Worker{registry: registry, workers: localWorkers}
}

// Run answers one shard request. The method shape follows net/rpc.
func (w *Worker) Run(req ShardRequest, reply *ShardReply) error {
	factory, ok := w.registry[req.Model]
	if !ok {
		return fmt.Errorf("cluster: worker has no model %q", req.Model)
	}
	proc, observers, err := factory()
	if err != nil {
		return err
	}
	obsName := req.Observer
	if obsName == "" {
		obsName = "value"
	}
	obs, ok := observers[obsName]
	if !ok {
		return fmt.Errorf("cluster: model %q has no observer %q", req.Model, obsName)
	}
	if req.Start != nil {
		proc = stochastic.Pin(proc, req.Start)
	}
	plan, err := core.NewPlan(req.Boundaries...)
	if err != nil {
		return err
	}
	g := &core.GMLSS{
		Proc:    proc,
		Query:   core.Query{Value: core.ThresholdValue(obs, req.Beta), Horizon: req.Horizon},
		Plan:    plan,
		Ratio:   req.Ratio,
		Ratios:  req.Ratios,
		Stop:    mc.Budget{Steps: 1}, // unused by RunRoots; validate() wants a rule
		Seed:    req.Seed,
		Workers: w.workers,
	}
	began := telemetry.Now()
	var res core.ShardResult
	if req.GroupRoots > 0 {
		res, err = g.RunRootsBy(context.Background(), req.RootLo, req.RootHi, req.GroupRoots)
	} else {
		groups := req.Groups
		if groups <= 0 {
			groups = 16
		}
		res, err = g.RunRoots(context.Background(), req.RootLo, req.RootHi, groups)
	}
	if err != nil {
		return err
	}
	reply.Result = res
	reply.WorkerNanos = int64(telemetry.Since(began))
	return nil
}

// ServeLocal starts n workers on loopback listeners — the
// fleet-in-a-process that tests, benchmarks and examples shard against;
// real deployments run Serve on one listener per machine instead. It
// returns the worker addresses and a stop function closing every
// listener.
func ServeLocal(reg Registry, n, localWorkers int) (addrs []string, stop func(), err error) {
	var lns []net.Listener
	stop = func() {
		for _, ln := range lns {
			ln.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, Serve(NewWorker(reg, localWorkers), ln))
	}
	return addrs, stop, nil
}

// Serve registers the worker on an rpc server and serves connections on
// the listener until it is closed. It returns the address it listens on.
func Serve(w *Worker, ln net.Listener) string {
	srv := rpc.NewServer()
	// Registration only fails for malformed services; Worker is static.
	if err := srv.RegisterName("Worker", w); err != nil {
		panic(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String()
}
