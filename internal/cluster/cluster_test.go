package cluster

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// chainRegistry registers a birth-death chain whose exact hitting
// probability is computable, so the cluster's answer can be validated
// against ground truth.
func chainRegistry() (Registry, float64, float64, int) {
	const beta = 7.0
	const horizon = 50
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	target := map[int]bool{}
	for i := int(beta); i < 10; i++ {
		target[i] = true
	}
	exact := chain.HitProbability(target, horizon)
	reg := Registry{
		"chain": func() (stochastic.Process, stochastic.Observer, error) {
			return stochastic.BirthDeathChain(10, 0.45, 0), stochastic.ChainIndex, nil
		},
	}
	return reg, beta, exact, horizon
}

// startWorkers spins n in-process rpc workers on loopback listeners.
func startWorkers(t *testing.T, reg Registry, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = Serve(NewWorker(reg, 2), ln)
	}
	return addrs
}

func TestClusterMatchesExactAnswer(t *testing.T) {
	reg, beta, exact, horizon := chainRegistry()
	addrs := startWorkers(t, reg, 3)
	coord := &Coordinator{
		Model:      "chain",
		Beta:       beta,
		Horizon:    horizon,
		Boundaries: []float64{3.0 / 7, 5.0 / 7},
		Ratio:      3,
		Stop:       mc.Any{mc.RETarget{Target: 0.1}, mc.Budget{Steps: 20_000_000}},
		Seed:       1,
		Registry:   reg,
	}
	res, err := coord.Run(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-exact) > 0.25*exact {
		t.Fatalf("cluster estimate %v, exact %v", res.P, exact)
	}
	if res.Steps == 0 || res.Paths == 0 || res.Hits == 0 {
		t.Fatalf("accounting missing: %+v", res)
	}
}

func TestClusterMatchesSingleMachine(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	addrs := startWorkers(t, reg, 2)
	boundaries := []float64{3.0 / 7, 5.0 / 7}
	coord := &Coordinator{
		Model:      "chain",
		Beta:       beta,
		Horizon:    horizon,
		Boundaries: boundaries,
		Ratio:      3,
		Stop:       mc.Budget{Steps: 400_000},
		Seed:       7,
		ShardRoots: 128,
		Registry:   reg,
	}
	cres, err := coord.Run(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	// The same roots simulated on one machine: identical substreams, so
	// the estimates agree to float re-association error.
	proc, obs, err := reg["chain"]()
	if err != nil {
		t.Fatal(err)
	}
	g := &core.GMLSS{
		Proc:    proc,
		Query:   core.Query{Value: core.ThresholdValue(obs, beta), Horizon: horizon},
		Plan:    core.MustPlan(boundaries...),
		Ratio:   3,
		Stop:    mc.Budget{Steps: 1},
		Seed:    7,
		Workers: 4,
	}
	shard, err := g.RunRoots(context.Background(), 0, cres.Paths, 16)
	if err != nil {
		t.Fatal(err)
	}
	local := core.EstimateFromCounters(shard.Agg, shard.Roots, core.MustPlan(boundaries...).M(), 0)
	if math.Abs(local-cres.P) > 1e-9 {
		t.Fatalf("cluster %v vs single-machine %v over the same roots", cres.P, local)
	}
	if shard.Steps != cres.Steps {
		t.Fatalf("cluster steps %d vs single-machine %d", cres.Steps, shard.Steps)
	}
}

func TestClusterErrors(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	ctx := context.Background()
	coord := &Coordinator{Model: "chain", Beta: beta, Horizon: horizon,
		Boundaries: []float64{0.5}, Stop: mc.Budget{Steps: 10}, Registry: reg}
	if _, err := coord.Run(ctx, nil); err == nil {
		t.Error("no workers accepted")
	}
	noStop := *coord
	noStop.Stop = nil
	if _, err := noStop.Run(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Error("missing stop rule accepted")
	}
	badModel := *coord
	badModel.Model = "nope"
	if _, err := badModel.Run(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := coord.Run(ctx, []string{"127.0.0.1:1"}); err == nil {
		t.Error("dead worker address accepted")
	}
}

// Failure injection: a worker that starts failing mid-query must surface
// as an error from the coordinator, not a hang or a silent partial answer.
func TestClusterWorkerFailsMidRun(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	// The flaky worker's model factory succeeds once (first shard) and
	// then breaks, emulating a machine losing its model mid-query.
	var mu sync.Mutex
	calls := 0
	flaky := Registry{
		"chain": func() (stochastic.Process, stochastic.Observer, error) {
			mu.Lock()
			calls++
			n := calls
			mu.Unlock()
			if n > 1 {
				return nil, nil, errors.New("injected: model store unavailable")
			}
			return stochastic.BirthDeathChain(10, 0.45, 0), stochastic.ChainIndex, nil
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	addr := Serve(NewWorker(flaky, 1), ln)
	coord := &Coordinator{
		Model:      "chain",
		Beta:       beta,
		Horizon:    horizon,
		Boundaries: []float64{3.0 / 7, 5.0 / 7},
		Ratio:      3,
		// An unreachable quality target forces a second round, which hits
		// the injected failure.
		Stop:       mc.Any{mc.RETarget{Target: 1e-9}, mc.Budget{Steps: 1 << 50}},
		Seed:       9,
		ShardRoots: 64,
		Registry:   reg, // the coordinator's own registry stays healthy
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background(), []string{addr})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coordinator returned nil error after worker failure")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after worker failure")
	}
}

// A worker dropping mid-run must not fail (or hang) the query: the
// coordinator marks it dead and retries its shard on a live worker. The
// answer stays bit-for-bit deterministic because root ranges travel with
// the retried shard.
func TestClusterWorkerDropRetriesOnLiveWorker(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	healthy := startWorkers(t, reg, 1)

	// A "worker" that accepts connections and slams them shut: the dial
	// succeeds, so the coordinator counts it as a member, but its first
	// shard call fails — the machine dropping right after the query
	// starts.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	boundaries := []float64{3.0 / 7, 5.0 / 7}
	coord := &Coordinator{
		Model:      "chain",
		Beta:       beta,
		Horizon:    horizon,
		Boundaries: boundaries,
		Ratio:      3,
		Stop:       mc.Budget{Steps: 400_000},
		Seed:       7,
		ShardRoots: 128,
		Registry:   reg,
	}
	done := make(chan error, 1)
	var cres mc.Result
	go func() {
		var err error
		cres, err = coord.Run(context.Background(), []string{healthy[0], ln.Addr().String()})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator failed instead of retrying on the live worker: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator hung after worker drop")
	}
	if cres.Paths == 0 || cres.Steps == 0 {
		t.Fatalf("no work accounted: %+v", cres)
	}

	// Exactly the same roots on one machine: the retried shards must not
	// have disturbed determinism.
	proc, obs, err := reg["chain"]()
	if err != nil {
		t.Fatal(err)
	}
	g := &core.GMLSS{
		Proc:    proc,
		Query:   core.Query{Value: core.ThresholdValue(obs, beta), Horizon: horizon},
		Plan:    core.MustPlan(boundaries...),
		Ratio:   3,
		Stop:    mc.Budget{Steps: 1},
		Seed:    7,
		Workers: 4,
	}
	shard, err := g.RunRoots(context.Background(), 0, cres.Paths, 16)
	if err != nil {
		t.Fatal(err)
	}
	local := core.EstimateFromCounters(shard.Agg, shard.Roots, core.MustPlan(boundaries...).M(), 0)
	if math.Abs(local-cres.P) > 1e-9 {
		t.Fatalf("estimate after retry %v differs from single-machine %v over the same roots", cres.P, local)
	}
}

// Losing every worker is still an error, not a hang.
func TestClusterAllWorkersDead(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	coord := &Coordinator{
		Model: "chain", Beta: beta, Horizon: horizon,
		Boundaries: []float64{3.0 / 7, 5.0 / 7}, Ratio: 3,
		Stop: mc.Budget{Steps: 1000}, Seed: 7, Registry: reg,
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(context.Background(), []string{ln.Addr().String()})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coordinator succeeded with no live workers")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung with no live workers")
	}
}

func TestWorkerRejectsUnknownModel(t *testing.T) {
	reg, _, _, _ := chainRegistry()
	w := NewWorker(reg, 1)
	var reply ShardReply
	err := w.Run(ShardRequest{Model: "missing", Beta: 1, Horizon: 10,
		Ratio: 2, RootLo: 0, RootHi: 10}, &reply)
	if err == nil {
		t.Fatal("unknown model accepted by worker")
	}
}

func TestWorkerRejectsBadPlan(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	w := NewWorker(reg, 1)
	var reply ShardReply
	err := w.Run(ShardRequest{Model: "chain", Beta: beta, Horizon: horizon,
		Boundaries: []float64{2.5}, Ratio: 2, RootLo: 0, RootHi: 10}, &reply)
	if err == nil {
		t.Fatal("invalid boundaries accepted by worker")
	}
}

func TestRunRootsEmptyRange(t *testing.T) {
	reg, beta, _, horizon := chainRegistry()
	proc, obs, _ := reg["chain"]()
	g := &core.GMLSS{
		Proc:  proc,
		Query: core.Query{Value: core.ThresholdValue(obs, beta), Horizon: horizon},
		Plan:  core.MustPlan(0.5),
		Ratio: 2,
		Stop:  mc.Budget{Steps: 1},
	}
	if _, err := g.RunRoots(context.Background(), 5, 5, 4); err == nil {
		t.Fatal("empty root range accepted")
	}
}
