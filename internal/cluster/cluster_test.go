package cluster

import (
	"context"
	"math"
	"net"
	"net/rpc"
	"testing"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// chainRegistry registers a birth-death chain whose exact hitting
// probability is computable, so worker results can be validated against
// local simulation.
func chainRegistry() (Registry, float64, int) {
	const beta = 7.0
	const horizon = 50
	reg := Registry{
		"chain": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return stochastic.BirthDeathChain(10, 0.45, 0), map[string]stochastic.Observer{"value": stochastic.ChainIndex}, nil
		},
	}
	return reg, beta, horizon
}

// startWorker spins one in-process rpc worker on a loopback listener.
func startWorker(t *testing.T, reg Registry) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return Serve(NewWorker(reg, 2), ln)
}

// localShard simulates the same root range in-process, for comparison.
func localShard(t *testing.T, proc stochastic.Process, obs stochastic.Observer, beta float64, horizon int, boundaries []float64, seed uint64, lo, hi int64, groupRoots int) core.ShardResult {
	t.Helper()
	g := &core.GMLSS{
		Proc:    proc,
		Query:   core.Query{Value: core.ThresholdValue(obs, beta), Horizon: horizon},
		Plan:    core.MustPlan(boundaries...),
		Ratio:   3,
		Stop:    mc.Budget{Steps: 1},
		Seed:    seed,
		Workers: 4,
	}
	res, err := g.RunRootsBy(context.Background(), lo, hi, groupRoots)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The rpc round trip must be a pure transport: a worker's shard result is
// bit-for-bit the local simulation of the same root range.
func TestWorkerShardMatchesLocal(t *testing.T) {
	reg, beta, horizon := chainRegistry()
	addr := startWorker(t, reg)
	boundaries := []float64{3.0 / 7, 5.0 / 7}

	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var reply ShardReply
	err = client.Call("Worker.Run", ShardRequest{
		Model: "chain", Beta: beta, Horizon: horizon,
		Boundaries: boundaries, Ratio: 3, Seed: 7,
		RootLo: 128, RootHi: 384, GroupRoots: 16,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}

	proc, observers, _ := reg["chain"]()
	want := localShard(t, proc, observers["value"], beta, horizon, boundaries, 7, 128, 384, 16)
	if reply.Result.Roots != want.Roots || reply.Result.Steps != want.Steps {
		t.Fatalf("worker shard %+v, local %+v", reply.Result, want)
	}
	if len(reply.Result.Groups) != len(want.Groups) {
		t.Fatalf("worker returned %d groups, local %d", len(reply.Result.Groups), len(want.Groups))
	}
	m := core.MustPlan(boundaries...).M()
	got := core.EstimateFromCounters(reply.Result.Agg, reply.Result.Roots, m, 0)
	local := core.EstimateFromCounters(want.Agg, want.Roots, m, 0)
	if got != local {
		t.Fatalf("worker estimate %v, local %v", got, local)
	}
}

// A pinned start state must shift the simulation's starting point: the
// worker result equals local simulation pinned to the same snapshot, not
// the model's canonical initial state.
func TestWorkerPinsStartState(t *testing.T) {
	reg, beta, horizon := chainRegistry()
	addr := startWorker(t, reg)
	boundaries := []float64{3.0 / 7, 5.0 / 7}
	start := &stochastic.ChainState{I: 2}

	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var reply ShardReply
	err = client.Call("Worker.Run", ShardRequest{
		Model: "chain", Start: start, Beta: beta, Horizon: horizon,
		Boundaries: boundaries, Ratio: 3, Seed: 7,
		RootLo: 0, RootHi: 128, GroupRoots: 16,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}

	proc, observers, _ := reg["chain"]()
	obs := observers["value"]
	pinnedLocal := localShard(t, stochastic.Pin(proc, start), obs, beta, horizon, boundaries, 7, 0, 128, 16)
	unpinned := localShard(t, proc, obs, beta, horizon, boundaries, 7, 0, 128, 16)
	m := core.MustPlan(boundaries...).M()
	initLevel := core.MustPlan(boundaries...).LevelOf(core.ThresholdValue(obs, beta)(start, 0))
	got := core.EstimateFromCounters(reply.Result.Agg, reply.Result.Roots, m, initLevel)
	want := core.EstimateFromCounters(pinnedLocal.Agg, pinnedLocal.Roots, m, initLevel)
	if got != want {
		t.Fatalf("pinned worker estimate %v, pinned local %v", got, want)
	}
	if reply.Result.Steps == unpinned.Steps && math.Abs(got-core.EstimateFromCounters(unpinned.Agg, unpinned.Roots, m, 0)) < 1e-12 {
		t.Fatal("pinned shard is indistinguishable from the unpinned one; Start was ignored")
	}
}

func TestWorkerRejectsUnknownModel(t *testing.T) {
	reg, _, _ := chainRegistry()
	w := NewWorker(reg, 1)
	var reply ShardReply
	err := w.Run(ShardRequest{Model: "missing", Beta: 1, Horizon: 10,
		Ratio: 2, RootLo: 0, RootHi: 10}, &reply)
	if err == nil {
		t.Fatal("unknown model accepted by worker")
	}
}

func TestWorkerRejectsUnknownObserver(t *testing.T) {
	reg, beta, horizon := chainRegistry()
	w := NewWorker(reg, 1)
	var reply ShardReply
	err := w.Run(ShardRequest{Model: "chain", Observer: "nope", Beta: beta,
		Horizon: horizon, Boundaries: []float64{0.5}, Ratio: 2,
		RootLo: 0, RootHi: 10}, &reply)
	if err == nil {
		t.Fatal("unknown observer accepted by worker")
	}
}

func TestWorkerRejectsBadPlan(t *testing.T) {
	reg, beta, horizon := chainRegistry()
	w := NewWorker(reg, 1)
	var reply ShardReply
	err := w.Run(ShardRequest{Model: "chain", Beta: beta, Horizon: horizon,
		Boundaries: []float64{2.5}, Ratio: 2, RootLo: 0, RootHi: 10}, &reply)
	if err == nil {
		t.Fatal("invalid boundaries accepted by worker")
	}
}

// The legacy group-count form (GroupRoots == 0) must keep working: older
// coordinators size groups by count.
func TestWorkerLegacyGroupCount(t *testing.T) {
	reg, beta, horizon := chainRegistry()
	w := NewWorker(reg, 1)
	var reply ShardReply
	err := w.Run(ShardRequest{Model: "chain", Beta: beta, Horizon: horizon,
		Boundaries: []float64{3.0 / 7, 5.0 / 7}, Ratio: 3, Seed: 1,
		RootLo: 0, RootHi: 64, Groups: 4}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Result.Groups) != 4 || reply.Result.Roots != 64 {
		t.Fatalf("legacy grouping produced %d groups over %d roots", len(reply.Result.Groups), reply.Result.Roots)
	}
}

func TestRunRootsEmptyRange(t *testing.T) {
	reg, beta, horizon := chainRegistry()
	proc, observers, _ := reg["chain"]()
	g := &core.GMLSS{
		Proc:  proc,
		Query: core.Query{Value: core.ThresholdValue(observers["value"], beta), Horizon: horizon},
		Plan:  core.MustPlan(0.5),
		Ratio: 2,
		Stop:  mc.Budget{Steps: 1},
	}
	if _, err := g.RunRoots(context.Background(), 5, 5, 4); err == nil {
		t.Fatal("empty root range accepted")
	}
}
