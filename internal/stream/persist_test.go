package stream

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"durability/internal/exec"
	"durability/internal/stochastic"
)

// memJournal captures engine events like a WAL would: every event is gob
// round-tripped at record time, so anything that would not survive the
// real on-disk encoding fails here, and replay consumes the decoded copy
// exactly as recovery does.
type memJournal struct {
	lsn    int64
	events []journaledEvent
}

type journaledEvent struct {
	lsn int64
	ev  JournalEvent
}

func (j *memJournal) Record(ev JournalEvent) (int64, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(struct{ E JournalEvent }{ev}); err != nil {
		return 0, err
	}
	var out struct{ E JournalEvent }
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		return 0, err
	}
	j.lsn++
	j.events = append(j.events, journaledEvent{lsn: j.lsn, ev: out.E})
	return j.lsn, nil
}

// chainResolver rebuilds the test chain the way a recovery would.
func chainResolver(stream, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
	return newChainEnv().proc, map[string]stochastic.Observer{"index": stochastic.ChainIndex}, nil
}

// answersEqual asserts two answers are bit-for-bit equal in every
// deterministic field (wall-clock times excepted, as everywhere in the
// repo's determinism tests).
func answersEqual(t *testing.T, label string, got, want Answer) {
	t.Helper()
	if got.Result.P != want.Result.P || got.Result.Variance != want.Result.Variance ||
		got.Result.Paths != want.Result.Paths || got.Result.Steps != want.Result.Steps ||
		got.Result.Hits != want.Result.Hits {
		t.Fatalf("%s: result (P=%v Var=%v paths=%d steps=%d hits=%d) != uninterrupted (P=%v Var=%v paths=%d steps=%d hits=%d)",
			label, got.Result.P, got.Result.Variance, got.Result.Paths, got.Result.Steps, got.Result.Hits,
			want.Result.P, want.Result.Variance, want.Result.Paths, want.Result.Steps, want.Result.Hits)
	}
	if got.Tick != want.Tick || got.Satisfied != want.Satisfied ||
		got.FreshRoots != want.FreshRoots || got.FreshSteps != want.FreshSteps ||
		got.SurvivedRoots != want.SurvivedRoots || got.DroppedRoots != want.DroppedRoots ||
		got.PoolRoots != want.PoolRoots || got.Replanned != want.Replanned || got.Capped != want.Capped {
		t.Fatalf("%s: answer %+v differs from uninterrupted %+v", label, got, want)
	}
}

// runRecovery drives the full crash/recover cycle on the given backend:
// an uninterrupted engine maintains the whole trajectory; a journaled
// engine is snapshotted after snapAt ticks, "crashes" after crashAt, and
// a recovered engine — Restore(snapshot) plus WAL-tail replay — finishes
// the trajectory. Every post-recovery answer must be bit-for-bit the
// uninterrupted engine's.
func runRecovery(t *testing.T, backend exec.Executor, trajectory []int, snapAt, crashAt int) {
	t.Helper()
	ctx := context.Background()
	env := newChainEnv()

	reference := maintain(t, backend, trajectory)

	// The journaled engine lives through snapAt ticks, is snapshotted,
	// then runs on to crashAt — those extra ticks form the WAL tail.
	journal := &memJournal{}
	live := NewEngine(Config{Exec: backend})
	live.SetJournal(journal)
	if err := live.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := live.Subscribe(ctx, env.spec())
	if err != nil {
		t.Fatal(err)
	}
	var snap EngineSnapshot
	for i := 0; i < crashAt; i++ {
		if i == snapAt {
			snap = live.Snapshot()
		}
		if _, err := live.Update(ctx, "chain", &stochastic.ChainState{I: trajectory[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if snapAt >= crashAt {
		snap = live.Snapshot()
	}
	_ = sub // the live engine is now abandoned: the crash

	// Recovery: restore the snapshot, replay the whole journal (events the
	// snapshot already covers are skipped by LSN), then keep serving.
	recovered := NewEngine(Config{Exec: backend})
	if err := recovered.Restore(snap, chainResolver); err != nil {
		t.Fatal(err)
	}
	for _, je := range journal.events {
		if err := recovered.Apply(ctx, je.lsn, je.ev, chainResolver); err != nil {
			t.Fatalf("replaying lsn %d (%T): %v", je.lsn, je.ev, err)
		}
	}

	rsub := recovered.findSub(sub.ID())
	if rsub == nil {
		t.Fatal("recovered engine lost the subscription")
	}
	// The answer standing after recovery must match the uninterrupted
	// engine's answer at the crash tick (reference[0] is the subscribe
	// answer, reference[i+1] the answer after tick i).
	answersEqual(t, "answer at crash tick", rsub.Answer(), reference[crashAt])

	// And every subsequent tick must stay bit-for-bit identical.
	for i := crashAt; i < len(trajectory); i++ {
		refreshes, err := recovered.Update(ctx, "chain", &stochastic.ChainState{I: trajectory[i]})
		if err != nil {
			t.Fatal(err)
		}
		if len(refreshes) != 1 || refreshes[0].Err != nil {
			t.Fatalf("refreshes %+v", refreshes)
		}
		answersEqual(t, "post-recovery tick", refreshes[0].Answer, reference[i+1])
	}
}

// A recovered engine must produce bit-for-bit the answers of an engine
// that never died — the repo's determinism guarantee extended across
// restarts. The trajectory includes drift, revisits and a bucket crossing,
// and the crash point leaves a non-empty WAL tail after the snapshot.
func TestRecoveryDeterminismLocal(t *testing.T) {
	trajectory := []int{0, 1, 0, 1, 2, 3, 2, 1, 0, 3, 4, 2, 1}
	runRecovery(t, exec.Local{}, trajectory, 4, 9)
}

// Recovery straight off a checkpoint (empty WAL tail).
func TestRecoveryDeterminismAtCheckpoint(t *testing.T) {
	trajectory := []int{0, 1, 2, 1, 0, 2, 3}
	runRecovery(t, exec.Local{}, trajectory, 4, 4)
}

// The same guarantee on the cluster backend: a recovered engine refreshing
// over a worker fleet matches the uninterrupted fleet bit for bit.
func TestRecoveryDeterminismCluster(t *testing.T) {
	backend := exec.NewCluster(startChainWorkers(t, 2)...)
	defer backend.Close()
	trajectory := []int{0, 1, 0, 2, 3, 2, 1, 0, 3}
	runRecovery(t, backend, trajectory, 3, 6)
}

// Closes must journal and replay: a subscription closed before the crash
// must stay closed after recovery, while the survivor keeps its answers.
func TestRecoveryReplaysClose(t *testing.T) {
	ctx := context.Background()
	env := newChainEnv()
	journal := &memJournal{}
	live := NewEngine(Config{})
	live.SetJournal(journal)
	if err := live.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	doomed, err := live.Subscribe(ctx, env.spec())
	if err != nil {
		t.Fatal(err)
	}
	spec2 := env.spec()
	spec2.Seed = 11
	survivor, err := live.Subscribe(ctx, spec2)
	if err != nil {
		t.Fatal(err)
	}
	snap := live.Snapshot()
	if _, err := live.Update(ctx, "chain", &stochastic.ChainState{I: 1}); err != nil {
		t.Fatal(err)
	}
	doomed.Close()

	recovered := NewEngine(Config{})
	if err := recovered.Restore(snap, chainResolver); err != nil {
		t.Fatal(err)
	}
	for _, je := range journal.events {
		if err := recovered.Apply(ctx, je.lsn, je.ev, chainResolver); err != nil {
			t.Fatal(err)
		}
	}
	if recovered.findSub(doomed.ID()) != nil {
		t.Fatal("closed subscription resurrected by recovery")
	}
	rsub := recovered.findSub(survivor.ID())
	if rsub == nil {
		t.Fatal("surviving subscription lost")
	}
	answersEqual(t, "survivor", rsub.Answer(), survivor.Answer())
}

// Restore must refuse a snapshot maintained under different engine
// numerics instead of silently replaying a different trajectory.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()

	other := NewEngine(Config{TopUpRoots: 128})
	if err := other.Restore(snap, chainResolver); err == nil {
		t.Fatal("Restore accepted a snapshot from different engine settings")
	}
}

// Restore must name the missing observer when a subscription's ObserverID
// cannot be resolved, rather than panicking later mid-refresh.
func TestRestoreRejectsUnknownObserver(t *testing.T) {
	ctx := context.Background()
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Subscribe(ctx, env.spec()); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()

	bare := func(stream, modelID string) (stochastic.Process, map[string]stochastic.Observer, error) {
		return env.proc, map[string]stochastic.Observer{}, nil
	}
	recovered := NewEngine(Config{})
	if err := recovered.Restore(snap, bare); err == nil {
		t.Fatal("Restore accepted a subscription with an unresolvable observer")
	}
}

// Restore only fills empty engines: recovering onto one already serving
// would splice two histories.
func TestRestoreRequiresEmptyEngine(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if err := eng.Restore(snap, chainResolver); err == nil {
		t.Fatal("Restore accepted a non-empty engine")
	}
}
