package stream

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// ringKeys is a fixed key population: a few streams, many subscription IDs.
func ringKeys() []struct {
	stream string
	id     uint64
} {
	streams := []string{"chain", "gbm", "queue/eu-west", "x"}
	var keys []struct {
		stream string
		id     uint64
	}
	for _, s := range streams {
		for id := uint64(1); id <= 2000; id++ {
			keys = append(keys, struct {
				stream string
				id     uint64
			}{s, id})
		}
	}
	return keys
}

// Every key maps to exactly one shard, in range, and the mapping is a
// pure function: two independently built rings agree everywhere.
func TestRingAssignsExactlyOneShard(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7, 16} {
		a := NewRing(shards, 0)
		b := NewRing(shards, 0)
		for _, k := range ringKeys() {
			sa := a.Shard(k.stream, k.id)
			if sa < 0 || sa >= shards {
				t.Fatalf("%d shards: key (%s,%d) mapped out of range: %d", shards, k.stream, k.id, sa)
			}
			if sb := b.Shard(k.stream, k.id); sb != sa {
				t.Fatalf("%d shards: ring is not a pure function: (%s,%d) -> %d then %d", shards, k.stream, k.id, sa, sb)
			}
		}
	}
}

// Balance: no shard owns a grossly disproportionate share of keys. With
// 64 vnodes/shard the spread stays well within 2x of uniform.
func TestRingBalance(t *testing.T) {
	const shards = 4
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	keys := ringKeys()
	for _, k := range keys {
		counts[r.Shard(k.stream, k.id)]++
	}
	uniform := len(keys) / shards
	for s, c := range counts {
		if c < uniform/2 || c > uniform*2 {
			t.Fatalf("shard %d owns %d of %d keys (uniform %d): unbalanced ring %v", s, c, len(keys), uniform, counts)
		}
	}
}

// Consistency: growing N→N+k moves keys only onto the new shards (a key
// whose owner survives the growth keeps it), and shrinking moves only the
// removed shards' keys. This is the minimal-movement property that makes
// resharding cheap.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys()
	for _, step := range []struct{ from, to int }{{4, 5}, {4, 8}, {8, 7}, {5, 4}} {
		a, b := NewRing(step.from, 0), NewRing(step.to, 0)
		moved := 0
		for _, k := range keys {
			sa, sb := a.Shard(k.stream, k.id), b.Shard(k.stream, k.id)
			if sa == sb {
				continue
			}
			moved++
			if step.to > step.from {
				// Growth: the destination must be one of the new shards.
				if sb < step.from {
					t.Fatalf("grow %d→%d: key (%s,%d) moved %d→%d, between surviving shards",
						step.from, step.to, k.stream, k.id, sa, sb)
				}
			} else {
				// Shrink: only keys of removed shards may move.
				if sa < step.to {
					t.Fatalf("shrink %d→%d: key (%s,%d) moved %d→%d but its shard survived",
						step.from, step.to, k.stream, k.id, sa, sb)
				}
			}
		}
		// The moved fraction should be near |Δ|/max(N,M), with generous
		// slack for hash variance.
		frac := float64(moved) / float64(len(keys))
		max := step.from
		if step.to > max {
			max = step.to
		}
		want := float64(abs(step.to-step.from)) / float64(max)
		if frac > 2.5*want {
			t.Fatalf("reshard %d→%d moved %.1f%% of keys, want ≈%.1f%%", step.from, step.to, 100*frac, 100*want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Golden: the assignment is pinned. The ring has no seed — its vnode
// positions are pure FNV of the shard index — so this fingerprint only
// changes if the hash or the vnode labeling changes, and any such change
// would orphan every checkpoint taken under the old placement. If this
// test fails, you have broken compatibility with existing sharded data
// directories; bump the on-disk layout rather than silently remapping.
func TestRingGoldenAssignment(t *testing.T) {
	r := NewRing(4, 0)
	h := fnv.New64a()
	for _, k := range ringKeys() {
		fmt.Fprintf(h, "%s/%d=%d;", k.stream, k.id, r.Shard(k.stream, k.id))
	}
	const want = "7c89adc4d04ab168"
	if got := fmt.Sprintf("%016x", h.Sum64()); got != want {
		t.Fatalf("4-shard assignment fingerprint = %s, want %s", got, want)
	}
	// And a handful of spot values, so a fingerprint mismatch is
	// debuggable against concrete keys.
	spots := []struct {
		stream string
		id     uint64
		want   int
	}{
		{"chain", 1, 2},
		{"chain", 2, 0},
		{"chain", 3, 1},
		{"gbm", 1, 1},
		{"queue/eu-west", 42, 0},
	}
	for _, s := range spots {
		if got := r.Shard(s.stream, s.id); got != s.want {
			t.Errorf("Shard(%q,%d) = %d, want %d", s.stream, s.id, got, s.want)
		}
	}
}
