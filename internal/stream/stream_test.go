package stream

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"durability/internal/mc"
	"durability/internal/serve"
	"durability/internal/stochastic"
)

// chainEnv is the exact-answer test bed: a birth-death chain whose hitting
// probability from any start state is computable by dynamic programming.
type chainEnv struct {
	proc    *stochastic.MarkovChain
	beta    float64
	horizon int
	target  map[int]bool
}

func newChainEnv() chainEnv {
	const n, p = 10, 0.45
	const beta, horizon = 7.0, 50
	target := map[int]bool{}
	for i := int(beta); i < n; i++ {
		target[i] = true
	}
	return chainEnv{proc: stochastic.BirthDeathChain(n, p, 0), beta: beta, horizon: horizon, target: target}
}

// exact computes the ground-truth standing answer from chain state i.
func (e chainEnv) exact(i int) float64 {
	return stochastic.BirthDeathChain(10, 0.45, i).HitProbability(e.target, e.horizon)
}

func (e chainEnv) spec() SubSpec {
	return SubSpec{
		Stream:     "chain",
		Obs:        stochastic.ChainIndex,
		ObserverID: "index",
		Beta:       e.beta,
		Horizon:    e.horizon,
		Seed:       7,
		Stop:       mc.Any{mc.RETarget{Target: 0.10}, mc.Budget{Steps: 50_000_000}},
	}
}

func TestStandingAnswerTracksExact(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), env.spec())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Drive the live state along a fixed trajectory below the threshold.
	trajectory := []int{0, 1, 2, 1, 2, 3, 2, 1, 0, 1, 2, 3, 4, 3, 2}
	check := func(i int, ans Answer) {
		t.Helper()
		exact := env.exact(i)
		if math.Abs(ans.P()-exact) > 0.5*exact {
			t.Errorf("state %d: maintained answer %v, exact %v", i, ans.P(), exact)
		}
	}
	check(0, sub.Answer())
	for _, i := range trajectory {
		refreshes, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: i})
		if err != nil {
			t.Fatal(err)
		}
		if len(refreshes) != 1 || refreshes[0].Err != nil {
			t.Fatalf("refreshes %+v", refreshes)
		}
		check(i, refreshes[0].Answer)
	}

	st := eng.Stats()
	if st.Ticks != int64(len(trajectory)) || st.Refreshes != int64(len(trajectory))+1 {
		t.Fatalf("engine stats %+v", st)
	}
	if st.FreshSteps == 0 || st.FreshRoots == 0 {
		t.Fatalf("no fresh simulation recorded: %+v", st)
	}
}

// TestRevisitedStateReusesPool verifies the incremental claim on a
// revisit: returning to an already-sampled state finds its root pool
// still alive and pays (nearly) nothing.
func TestRevisitedStateReusesPool(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 2}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), env.spec())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	cold := sub.Answer()
	if cold.FreshSteps == 0 {
		t.Fatal("initial subscribe did no simulation")
	}

	// Leave state 2 and come straight back: the batches simulated at
	// state 2 survive (same normalized value), so the revisit needs at
	// most a marginal top-up.
	if _, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: 1}); err != nil {
		t.Fatal(err)
	}
	refreshes, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: 2})
	if err != nil {
		t.Fatal(err)
	}
	back := refreshes[0].Answer
	if back.SurvivedRoots == 0 {
		t.Fatalf("no roots survived the revisit: %+v", back)
	}
	if back.FreshSteps > cold.FreshSteps/2 {
		t.Fatalf("revisit cost %d steps, initial fill cost %d — not incremental", back.FreshSteps, cold.FreshSteps)
	}
}

func TestBecalmedStreamMaintainsCheaply(t *testing.T) {
	proc := &stochastic.RandomWalk{Sigma: 1}
	eng := NewEngine(Config{})
	if err := eng.Register("walk", proc, &stochastic.Scalar{V: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), SubSpec{
		Stream:     "walk",
		Obs:        stochastic.ScalarValue,
		ObserverID: "value",
		Beta:       20,
		Horizon:    100,
		Seed:       3,
		Stop:       mc.Any{mc.RETarget{Target: 0.15}, mc.Budget{Steps: 50_000_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	cold := sub.Answer()

	// The live value creeps by 0.05 per tick — 0.25% of the threshold —
	// so the pool survives essentially intact and per-tick maintenance is
	// a small fraction of the cold fill.
	var maintSteps int64
	const ticks = 10
	for i := 1; i <= ticks; i++ {
		refreshes, err := eng.Update(context.Background(), "walk", &stochastic.Scalar{V: 0.05 * float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ans := refreshes[0].Answer
		if refreshes[0].Err != nil {
			t.Fatal(refreshes[0].Err)
		}
		if ans.Replanned {
			t.Fatalf("tick %d replanned without leaving the drift bucket", i)
		}
		if ans.SurvivedRoots == 0 {
			t.Fatalf("tick %d dropped the whole pool: %+v", i, ans)
		}
		maintSteps += ans.FreshSteps + ans.SearchSteps
	}
	if maintSteps*2 > cold.FreshSteps+cold.SearchSteps {
		t.Fatalf("10 ticks of maintenance cost %d steps vs cold fill %d — not incremental",
			maintSteps, cold.FreshSteps+cold.SearchSteps)
	}
}

func TestDriftBucketReplanAndCacheReuse(t *testing.T) {
	proc := &stochastic.RandomWalk{Sigma: 1}
	eng := NewEngine(Config{})
	if err := eng.Register("walk", proc, &stochastic.Scalar{V: 1}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), SubSpec{
		Stream: "walk", Obs: stochastic.ScalarValue, ObserverID: "value",
		Beta: 20, Horizon: 100, Seed: 3,
		Stop: mc.Any{mc.RETarget{Target: 0.2}, mc.Budget{Steps: 50_000_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// f0 jumps 0.05 -> 0.60: a different drift bucket, so the plan is
	// re-resolved (fresh search) and the pool is dropped.
	refreshes, err := eng.Update(context.Background(), "walk", &stochastic.Scalar{V: 12})
	if err != nil {
		t.Fatal(err)
	}
	up := refreshes[0].Answer
	if !up.Replanned || up.PlanCached {
		t.Fatalf("bucket crossing should pay a fresh search: %+v", up)
	}
	if up.SurvivedRoots != 0 {
		t.Fatalf("far-away roots contributed to the answer: %+v", up)
	}
	if up.PoolRoots <= up.FreshRoots {
		t.Fatalf("dormant roots were deleted instead of retained: %+v", up)
	}

	// Jump back into the original bucket: replanned again, but the plan
	// comes from the cache and the original pool revives.
	refreshes, err = eng.Update(context.Background(), "walk", &stochastic.Scalar{V: 1})
	if err != nil {
		t.Fatal(err)
	}
	down := refreshes[0].Answer
	if !down.Replanned || !down.PlanCached {
		t.Fatalf("returning to a visited bucket should reuse its plan: %+v", down)
	}
	if down.SearchSteps != 0 {
		t.Fatalf("cache hit charged %d search steps", down.SearchSteps)
	}
	if down.SurvivedRoots == 0 {
		t.Fatalf("revisit did not revive the original pool: %+v", down)
	}
	if eng.Stats().Replans != 2 {
		t.Fatalf("engine stats %+v, want 2 replans", eng.Stats())
	}
}

func TestSatisfiedState(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 8}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), env.spec())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ans := sub.Answer()
	if !ans.Satisfied || ans.P() != 1 || ans.FreshSteps != 0 || ans.SearchSteps != 0 {
		t.Fatalf("above-threshold state should answer 1 for free: %+v", ans)
	}
	// Receding below the threshold resumes sampling.
	refreshes, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: 3})
	if err != nil {
		t.Fatal(err)
	}
	ans = refreshes[0].Answer
	if ans.Satisfied || ans.FreshSteps == 0 {
		t.Fatalf("receding state should resume sampling: %+v", ans)
	}
}

func TestRegisterReplaceInvalidatesPlans(t *testing.T) {
	runner := &serve.Runner{Cache: serve.NewPlanCache(0)}
	eng := NewEngine(Config{Runner: runner})
	if err := eng.Register("walk", &stochastic.RandomWalk{Sigma: 1}, &stochastic.Scalar{V: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), SubSpec{
		Stream: "walk", Obs: stochastic.ScalarValue, ObserverID: "value",
		Beta: 20, Horizon: 100, Seed: 3,
		Stop: mc.Any{mc.RETarget{Target: 0.2}, mc.Budget{Steps: 50_000_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Recalibrated dynamics: same stream name, different process.
	if err := eng.Register("walk", &stochastic.RandomWalk{Sigma: 1.5}, &stochastic.Scalar{V: 0}); err != nil {
		t.Fatal(err)
	}
	if got := runner.Cache.Stats().Invalidated; got == 0 {
		t.Fatal("re-registration did not invalidate cached plans")
	}
	refreshes, err := eng.Update(context.Background(), "walk", &stochastic.Scalar{V: 0})
	if err != nil {
		t.Fatal(err)
	}
	ans := refreshes[0].Answer
	if ans.SearchSteps == 0 || ans.PlanCached {
		t.Fatalf("first refresh after recalibration should re-search: %+v", ans)
	}
	if ans.SurvivedRoots != 0 {
		t.Fatalf("old-dynamics roots survived recalibration: %+v", ans)
	}
}

func TestWaitLongPoll(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), env.spec())
	if err != nil {
		t.Fatal(err)
	}
	since := sub.Answer().Tick

	got := make(chan Answer, 1)
	go func() {
		ans, err := sub.Wait(context.Background(), since)
		if err != nil {
			t.Error(err)
		}
		got <- ans
	}()
	// Give the waiter a moment to block, then publish.
	time.Sleep(10 * time.Millisecond)
	if _, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case ans := <-got:
		if ans.Tick != since+1 {
			t.Fatalf("woke with tick %d, want %d", ans.Tick, since+1)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not wake on update")
	}

	// A context deadline unblocks a waiter with no update.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Wait(ctx, since+1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}

	// Close wakes waiters with ErrSubscriptionClosed.
	errs := make(chan error, 1)
	go func() {
		_, err := sub.Wait(context.Background(), since+1)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrSubscriptionClosed) {
			t.Fatalf("err = %v, want ErrSubscriptionClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not wake the waiter")
	}
	if eng.Stats().Subscriptions != 0 {
		t.Fatal("closed subscription still registered")
	}
}

func TestSubscriptionPublish(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), env.spec())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ans, err := sub.Publish(context.Background(), &stochastic.ChainState{I: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Tick != 1 {
		t.Fatalf("publish answered tick %d, want 1", ans.Tick)
	}
}

func TestDeterministicMaintenance(t *testing.T) {
	run := func() []float64 {
		env := newChainEnv()
		eng := NewEngine(Config{})
		if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
			t.Fatal(err)
		}
		sub, err := eng.Subscribe(context.Background(), env.spec())
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		out := []float64{sub.Answer().P()}
		for _, i := range []int{1, 2, 1, 2, 3, 2} {
			refreshes, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: i})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, refreshes[0].Answer.P())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d diverged across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestValidationErrors(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{})
	ctx := context.Background()
	if _, err := eng.Subscribe(ctx, env.spec()); err == nil {
		t.Error("subscribe to unknown stream accepted")
	}
	if err := eng.Register("", env.proc, &stochastic.ChainState{}); err == nil {
		t.Error("empty stream name accepted")
	}
	if err := eng.Register("chain", nil, &stochastic.ChainState{}); err == nil {
		t.Error("nil process accepted")
	}
	if err := eng.Register("chain", env.proc, nil); err == nil {
		t.Error("nil initial state accepted")
	}
	if _, err := eng.Update(ctx, "nope", &stochastic.ChainState{}); err == nil {
		t.Error("update of unknown stream accepted")
	}
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(ctx, "chain", nil); err == nil {
		t.Error("nil state accepted")
	}
	for _, bad := range []SubSpec{
		{Stream: "chain", Beta: 7, Horizon: 50},                              // no observer
		{Stream: "chain", Obs: stochastic.ChainIndex, Beta: -1, Horizon: 50}, // bad threshold
		{Stream: "chain", Obs: stochastic.ChainIndex, Beta: 7, Horizon: 0},   // bad horizon
		{Obs: stochastic.ChainIndex, Beta: 7, Horizon: 50},                   // no stream
	} {
		if _, err := eng.Subscribe(ctx, bad); err == nil {
			t.Errorf("bad spec %+v accepted", bad)
		}
	}
}

// TestManySubscriptionsOneUpdate exercises the per-update scheduler: many
// subscriptions on one stream refresh in parallel and all land answers.
func TestManySubscriptionsOneUpdate(t *testing.T) {
	env := newChainEnv()
	eng := NewEngine(Config{RefreshWorkers: 4})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	var subs []*Subscription
	for i := 0; i < 8; i++ {
		spec := env.spec()
		spec.Seed = uint64(i + 1)
		sub, err := eng.Subscribe(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs = append(subs, sub)
	}
	refreshes, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshes) != len(subs) {
		t.Fatalf("%d refreshes for %d subscriptions", len(refreshes), len(subs))
	}
	for i, r := range refreshes {
		if r.Err != nil {
			t.Fatalf("refresh %d: %v", i, r.Err)
		}
		if r.Answer.Tick != 1 || r.Answer.P() <= 0 {
			t.Fatalf("refresh %d answer %+v", i, r.Answer)
		}
		if i > 0 && r.SubID <= refreshes[i-1].SubID {
			t.Fatal("refreshes not ordered by subscription ID")
		}
	}
}
