package stream

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// canonAnswer strips the fields that are legitimately nondeterministic —
// wall-clock times, and search-cost attribution (single-flight plan
// search attributes its steps to whichever concurrent refresh won the
// race) — so the remainder compares with ==, the PR 5 drill contract.
func canonAnswer(a Answer) Answer {
	a.Result.Elapsed, a.Result.VarTime = 0, 0
	a.SearchSteps = 0
	a.PlanCached = false
	return a
}

// shardedSpec is a cheap standing query for parity drills: budget-capped
// so every refresh terminates quickly regardless of how unreachable the
// quality target is.
func shardedSpec(env chainEnv, seed uint64) SubSpec {
	return SubSpec{
		Stream:     "chain",
		Obs:        stochastic.ChainIndex,
		ObserverID: "index",
		Beta:       env.beta,
		Horizon:    env.horizon,
		Seed:       seed,
		Stop:       mc.Any{mc.RETarget{Target: 0.15}, mc.Budget{Steps: 8_000}},
	}
}

// chainTrajectory is a fixed 500-tick pseudo-walk below the threshold:
// drift, revisits and bucket crossings, the shapes that exercise
// survival pruning, top-up and replanning.
func chainTrajectory(n int) []int {
	pattern := []int{0, 1, 2, 1, 2, 3, 4, 3, 2, 1, 0, 1, 2, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	out := make([]int, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// TestShardedMatchesSingleBitForBit is the statistical regression drill
// the tentpole rests on: a 4-shard engine must answer bit-for-bit like
// the 1-shard engine across 500 ticks — placement is invisible to
// answers, because each subscription's randomness derives only from its
// own (spec, ID) and plan searches are pure functions of their key.
func TestShardedMatchesSingleBitForBit(t *testing.T) {
	const ticks = 500
	const subsUpfront = 6
	const subsMidway = 2
	ctx := context.Background()
	env := newChainEnv()

	single := NewEngine(Config{})
	sharded := NewSharded(Config{}, 4, 0)
	if err := single.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}

	subscribe := func(seed uint64) {
		t.Helper()
		if _, err := single.Subscribe(ctx, shardedSpec(env, seed)); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Subscribe(ctx, shardedSpec(env, seed)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < subsUpfront; i++ {
		subscribe(uint64(100 + i))
	}

	// The subscriptions must actually spread: all on one shard would pass
	// parity vacuously.
	used := map[int]bool{}
	for _, sub := range sharded.Subscriptions() {
		used[sharded.Ring().Shard("chain", sub.ID())] = true
	}
	if len(used) < 2 {
		t.Fatalf("all %d subscriptions landed on one shard; ring not exercised", subsUpfront)
	}

	trajectory := chainTrajectory(ticks)
	for k, i := range trajectory {
		if k == ticks/2 {
			// Mid-stream subscribes: the shared ID sequence must stay in
			// lockstep with the single engine's.
			for j := 0; j < subsMidway; j++ {
				subscribe(uint64(200 + j))
			}
		}
		st := &stochastic.ChainState{I: i}
		want, err := single.Update(ctx, "chain", st)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Update(ctx, "chain", st)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("tick %d: %d refreshes from sharded, %d from single", k, len(got), len(want))
		}
		for j := range want {
			if got[j].SubID != want[j].SubID {
				t.Fatalf("tick %d: refresh %d is sub %d on sharded, %d on single — merge order broken",
					k, j, got[j].SubID, want[j].SubID)
			}
			if got[j].Err != nil || want[j].Err != nil {
				t.Fatalf("tick %d sub %d: refresh errors %v / %v", k, want[j].SubID, got[j].Err, want[j].Err)
			}
			if canonAnswer(got[j].Answer) != canonAnswer(want[j].Answer) {
				t.Fatalf("tick %d sub %d: sharded answer %+v != single %+v",
					k, want[j].SubID, canonAnswer(got[j].Answer), canonAnswer(want[j].Answer))
			}
		}
	}

	sst, wst := sharded.Stats(), single.Stats()
	if sst.Subscriptions != wst.Subscriptions || sst.Ticks != wst.Ticks {
		t.Fatalf("sharded stats %+v, single %+v", sst, wst)
	}
}

// TestShardedConcurrentSubscribeTick drives subscribes, ticks, closes and
// stat reads concurrently — the -race half of the CI coverage. Assertions
// are structural (counts, no errors); determinism under concurrency is
// the previous test's job.
func TestShardedConcurrentSubscribeTick(t *testing.T) {
	ctx := context.Background()
	env := newChainEnv()
	sharded := NewSharded(Config{}, 4, 0)
	if err := sharded.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}

	const subscribers = 4
	const perSubscriber = 6
	const ticks = 20
	var wg sync.WaitGroup
	errc := make(chan error, subscribers+2)
	for g := 0; g < subscribers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubscriber; i++ {
				sub, err := sharded.Subscribe(ctx, shardedSpec(env, uint64(g*100+i)))
				if err != nil {
					errc <- fmt.Errorf("subscriber %d: %w", g, err)
					return
				}
				if i == 0 && g == 0 {
					sub.Close() // one close races the ticker too
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		trajectory := chainTrajectory(ticks)
		for _, i := range trajectory {
			if _, err := sharded.Update(ctx, "chain", &stochastic.ChainState{I: i}); err != nil {
				errc <- fmt.Errorf("tick: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sharded.Stats()
			sharded.Subscriptions()
			sharded.Tick("chain")
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := subscribers*perSubscriber - 1 // one closed
	if st := sharded.Stats(); st.Subscriptions != want {
		t.Fatalf("subscriptions = %d, want %d", st.Subscriptions, want)
	}
}

// TestShardedCatchUp reconciles a shard that missed ticks (the mid-tick
// crash footprint: some shard journals took the update, others did not).
// After CatchUp republishes the missing states, every answer must be
// bit-for-bit the answers of an engine that never diverged.
func TestShardedCatchUp(t *testing.T) {
	ctx := context.Background()
	env := newChainEnv()
	trajectory := []int{1, 2, 3, 2}

	control := NewSharded(Config{}, 2, 0)
	diverged := NewSharded(Config{}, 2, 0)
	for _, se := range []*ShardedEngine{control, diverged} {
		if err := se.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := se.Subscribe(ctx, shardedSpec(env, uint64(10+i))); err != nil {
				t.Fatal(err)
			}
		}
	}

	states := func(k int64) (stochastic.State, error) {
		return &stochastic.ChainState{I: trajectory[k-1]}, nil
	}
	// Control sees the full trajectory through the wrapper; the diverged
	// engine loses the last two ticks on shard 1 (its journal "died").
	for k, i := range trajectory {
		st := &stochastic.ChainState{I: i}
		if _, err := control.Update(ctx, "chain", st); err != nil {
			t.Fatal(err)
		}
		if k < len(trajectory)-2 {
			if _, err := diverged.Update(ctx, "chain", st); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := diverged.Shard(0).Update(ctx, "chain", st); err != nil {
				t.Fatal(err)
			}
		}
	}
	ticksBefore, _ := diverged.ShardTicks("chain")
	if ticksBefore[0] != int64(len(trajectory)) || ticksBefore[1] != int64(len(trajectory)-2) {
		t.Fatalf("setup: shard ticks %v", ticksBefore)
	}

	if err := diverged.CatchUp(ctx, "chain", int64(len(trajectory)), states); err != nil {
		t.Fatal(err)
	}
	ticksAfter, _ := diverged.ShardTicks("chain")
	for i, tk := range ticksAfter {
		if tk != int64(len(trajectory)) {
			t.Fatalf("shard %d still at tick %d after CatchUp", i, tk)
		}
	}
	want := control.Subscriptions()
	got := diverged.Subscriptions()
	if len(got) != len(want) {
		t.Fatalf("%d subs vs %d", len(got), len(want))
	}
	for i := range want {
		if canonAnswer(got[i].Answer()) != canonAnswer(want[i].Answer()) {
			t.Fatalf("sub %d: caught-up answer %+v != control %+v",
				want[i].ID(), canonAnswer(got[i].Answer()), canonAnswer(want[i].Answer()))
		}
	}

	// A shard ahead of the target is lineage divergence, not lag.
	if err := diverged.CatchUp(ctx, "chain", 1, states); err == nil {
		t.Fatal("CatchUp accepted a target behind a shard's tick")
	}
}
