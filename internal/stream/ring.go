package stream

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultRingReplicas is the virtual-node count per shard. 64 points per
// shard keeps the assignment within a few percent of uniform at the shard
// counts a single node runs (2–32) while the ring stays tiny.
const DefaultRingReplicas = 64

// Ring is a deterministic consistent-hash ring mapping (stream,
// subscription) keys to engine shards. Determinism is load-bearing twice
// over: the vnode positions derive from nothing but the shard index (no
// seed, no randomness), so the same shard count always yields the same
// assignment — which is what lets a checkpoint taken under N shards
// restore into a fresh process with N shards and find every subscription
// in the shard whose WAL lineage carries it. And consistent hashing keeps
// resharding N→M cheap: only keys landing on the new (or removed) shards'
// arcs move.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	shards int
	points []uint64 // sorted vnode positions
	owner  []int    // owner[i] is the shard owning points[i]
}

// NewRing builds a ring over the given shard count. replicas <= 0 selects
// DefaultRingReplicas.
func NewRing(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &Ring{
		shards: shards,
		points: make([]uint64, 0, shards*replicas),
		owner:  make([]int, 0, shards*replicas),
	}
	type vnode struct {
		point uint64
		shard int
	}
	vnodes := make([]vnode, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "shard/%d/vnode/%d", s, v)
			vnodes = append(vnodes, vnode{point: h.Sum64(), shard: s})
		}
	}
	// Ties (astronomically unlikely, but the ring must be a function)
	// resolve to the lower shard index.
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].point != vnodes[j].point {
			return vnodes[i].point < vnodes[j].point
		}
		return vnodes[i].shard < vnodes[j].shard
	})
	for _, vn := range vnodes {
		r.points = append(r.points, vn.point)
		r.owner = append(r.owner, vn.shard)
	}
	return r
}

// Shards returns the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Key hashes a (stream, subscription) pair to its ring position.
func Key(stream string, id uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(stream))
	var buf [9]byte
	buf[0] = '/'
	for i := 0; i < 8; i++ {
		buf[1+i] = byte(id >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// Shard maps a (stream, subscription) pair to the shard owning the first
// vnode at or clockwise after its key.
func (r *Ring) Shard(stream string, id uint64) int {
	if r.shards == 1 {
		return 0
	}
	key := Key(stream, id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= key })
	if i == len(r.points) {
		i = 0 // wrap past the highest vnode
	}
	return r.owner[i]
}
