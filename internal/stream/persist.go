package stream

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

// This file is the durability surface of the maintenance engine: the
// serving state a process must carry across a restart, extracted into
// plain-data snapshot types, plus the journal events that describe every
// state mutation between snapshots. internal/persist stores both; the
// engine only defines what "the state" and "an event" are.
//
// The contract the types uphold is the repository's signature determinism
// guarantee extended across process death: Restore hands back an engine
// whose g-MLSS counters, root substream indices (nextRoot) and bootstrap
// generator positions are exactly the captured ones, and Apply re-runs
// journaled mutations through the same deterministic refresh path live
// traffic used — so a recovered engine's subsequent answers are
// bit-for-bit the answers the uninterrupted engine would have produced.

// SpecState is the serializable form of a SubSpec: everything except the
// observer function itself, which is code and is re-resolved by name at
// restore time. Specs whose ObserverID does not name an observer known to
// the restoring process cannot be recovered — durable subscriptions must
// use registered observer names.
type SpecState struct {
	Stream     string
	ObserverID string
	Beta       float64
	Horizon    int
	Ratio      int
	Seed       uint64
	SimWorkers int
	DriftTol   float64
	MaxAge     int64
	Stop       mc.Any
}

// specState extracts the serializable view of a (defaulted) SubSpec.
func specState(s SubSpec) SpecState {
	return SpecState{
		Stream:     s.Stream,
		ObserverID: s.ObserverID,
		Beta:       s.Beta,
		Horizon:    s.Horizon,
		Ratio:      s.Ratio,
		Seed:       s.Seed,
		SimWorkers: s.SimWorkers,
		DriftTol:   s.DriftTol,
		MaxAge:     s.MaxAge,
		Stop:       s.Stop,
	}
}

// subSpec rebuilds the live SubSpec around a resolved observer.
func (st SpecState) subSpec(obs stochastic.Observer) SubSpec {
	return SubSpec{
		Stream:     st.Stream,
		Obs:        obs,
		ObserverID: st.ObserverID,
		Beta:       st.Beta,
		Horizon:    st.Horizon,
		Ratio:      st.Ratio,
		Seed:       st.Seed,
		SimWorkers: st.SimWorkers,
		DriftTol:   st.DriftTol,
		MaxAge:     st.MaxAge,
		Stop:       st.Stop,
	}
}

// BatchState is one unit of root survival as it appears in a snapshot:
// the g-MLSS sufficient statistics of a batch of root trees, dormant ones
// included — a revisit after recovery must find its roots alive exactly
// as it would have before the restart.
type BatchState struct {
	Tick      int64
	F0        float64
	InitLevel int
	Plan      core.Plan
	Roots     int64
	Steps     int64
	Agg       core.Counters
	Groups    []core.Counters
}

// SubState is the full maintenance state of one subscription: the spec,
// the resolved plan and its drift bucket, the root pool, the next root
// substream index, the bootstrap generator mid-sequence, and the published
// answer. Restoring it resumes maintenance as if the process never died.
type SubState struct {
	ID       uint64
	Spec     SpecState
	HavePlan bool
	Plan     core.Plan
	Bucket   int
	NextRoot int64
	Boot     *rng.Source // nil when no refresh ever ran
	Batches  []BatchState
	Answer   Answer
	Stats    SubStats
}

// StreamState is one live state and its subscriptions. LSN is the journal
// sequence number of the last mutation this stream has applied; replay
// skips events at or below it, which is what makes a snapshot taken while
// traffic flows consistent with the WAL around it.
type StreamState struct {
	Name    string
	ModelID string
	State   stochastic.State
	Tick    int64
	LSN     int64
	Subs    []SubState
}

// ConfigState echoes the engine settings that are part of the maintained
// numerics. A snapshot restored under different settings would replay and
// refresh along a different trajectory, so Restore refuses the mismatch
// instead of silently breaking the determinism guarantee.
type ConfigState struct {
	DriftTol         float64
	StartBucketWidth float64
	TopUpRoots       int
	GroupRoots       int
	MaxAgeTicks      int64
	MaxRefreshSteps  int64
	BootstrapReps    int
}

// configState extracts the numerics-relevant settings of a (defaulted)
// Config. RefreshWorkers and the execution backend are deliberately
// absent: both only decide placement and scheduling, never numerics.
func configState(c Config) ConfigState {
	return ConfigState{
		DriftTol:         c.DriftTol,
		StartBucketWidth: c.StartBucketWidth,
		TopUpRoots:       c.TopUpRoots,
		GroupRoots:       c.GroupRoots,
		MaxAgeTicks:      c.MaxAgeTicks,
		MaxRefreshSteps:  c.MaxRefreshSteps,
		BootstrapReps:    c.BootstrapReps,
	}
}

// EngineCounters are the engine's lifetime cost counters, carried so a
// recovered server's accounting continues rather than resetting. Events
// replayed from the WAL tail re-book their cost on top; a tick that was
// both captured by the snapshot and replayed counts twice in these
// aggregates (never in any answer), which recovery accepts as noise.
type EngineCounters struct {
	Ticks       int64
	Refreshes   int64
	FreshRoots  int64
	FreshSteps  int64
	SearchSteps int64
	Replans     int64
	Dropped     int64
}

// EngineSnapshot is the engine's full serving state at one instant.
//
//durlint:gobroot
type EngineSnapshot struct {
	Config   ConfigState
	NextSub  uint64
	Counters EngineCounters
	Streams  []StreamState
}

// Resolver rebuilds a stream's dynamics and named observers at restore
// time. Processes and observers are code, not data — the registry idiom of
// internal/cluster — so snapshots and events carry only names and the
// restoring process supplies the implementations.
type Resolver func(stream, modelID string) (stochastic.Process, map[string]stochastic.Observer, error)

// JournalEvent is one logged engine mutation. The concrete types are
// registered with gob so events round-trip through persist WAL records as
// interface values.
//
//durlint:gobroot
type JournalEvent interface{ journalEvent() }

// EvRegistered records a stream's creation — or, when the name already
// existed, the recalibration that replaced its dynamics and reset its
// state (which also invalidates the stream's cached plans on replay).
type EvRegistered struct {
	Name    string
	ModelID string
	State   stochastic.State
}

// EvSubscribed records a successfully registered standing query with its
// engine-assigned ID. Replay re-runs the initial refresh through the same
// deterministic path, reconstructing the pool the live subscribe built.
type EvSubscribed struct {
	Spec SpecState
	ID   uint64
}

// EvClosed records a subscription's deregistration.
type EvClosed struct {
	ID uint64
}

// EvUpdated records one published state of a live stream. Replay re-runs
// every affected subscription's refresh; determinism makes the replayed
// refreshes consume exactly the root substreams and bootstrap draws the
// live refreshes consumed.
type EvUpdated struct {
	Name  string
	State stochastic.State
}

func (EvRegistered) journalEvent() {}
func (EvSubscribed) journalEvent() {}
func (EvClosed) journalEvent()     {}
func (EvUpdated) journalEvent()    {}

func init() {
	gob.Register(EvRegistered{})
	gob.Register(EvSubscribed{})
	gob.Register(EvClosed{})
	gob.Register(EvUpdated{})
}

// Journal receives every engine mutation as it happens and returns the
// record's log sequence number (monotonically increasing). The engine
// stores the LSN on the mutated stream, and snapshots carry it, so replay
// can tell which journaled events a snapshot already includes.
// internal/persist's Store is the intended implementation.
type Journal interface {
	Record(ev JournalEvent) (lsn int64, err error)
}

// SetJournal attaches (or detaches, with nil) the engine's journal. Attach
// after Restore and replay, never before — a journal active during replay
// would re-log every replayed event.
func (e *Engine) SetJournal(j Journal) {
	e.jmu.Lock()
	e.journal = j
	e.jmu.Unlock()
}

// record journals one event, returning lsn 0 with no journal attached.
func (e *Engine) record(ev JournalEvent) (int64, error) {
	e.jmu.RLock()
	j := e.journal
	e.jmu.RUnlock()
	if j == nil {
		return 0, nil
	}
	return j.Record(ev)
}

// Snapshot captures the engine's full serving state. It locks each stream
// briefly (streams snapshot one at a time, in name order) and copies only
// what later mutation could touch: batch contents are immutable once
// simulated, so the pool is captured by reference; states and generators
// are copied by value. Safe to run concurrently with live traffic — the
// per-stream LSNs reconcile the snapshot with the journal around it.
func (e *Engine) Snapshot() EngineSnapshot {
	snap := EngineSnapshot{
		Config:  configState(e.cfg),
		NextSub: e.nextSub.Load(),
		Counters: EngineCounters{
			Ticks:       e.ticks.Load(),
			Refreshes:   e.refreshes.Load(),
			FreshRoots:  e.freshRoots.Load(),
			FreshSteps:  e.freshSteps.Load(),
			SearchSteps: e.searchSteps.Load(),
			Replans:     e.replans.Load(),
			Dropped:     e.dropped.Load(),
		},
	}
	e.mu.RLock()
	streams := make([]*liveState, 0, len(e.streams))
	for _, ls := range e.streams {
		streams = append(streams, ls)
	}
	e.mu.RUnlock()
	sort.Slice(streams, func(i, j int) bool { return streams[i].name < streams[j].name })

	for _, ls := range streams {
		ls.mu.Lock()
		ss := StreamState{
			Name:    ls.name,
			ModelID: ls.modelID,
			State:   ls.state.Clone(),
			Tick:    ls.tick,
			LSN:     ls.lsn,
			Subs:    make([]SubState, 0, len(ls.subs)),
		}
		subs := make([]*Subscription, 0, len(ls.subs))
		for _, sub := range ls.subs {
			subs = append(subs, sub)
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
		for _, sub := range subs {
			ss.Subs = append(ss.Subs, sub.extract())
		}
		ls.mu.Unlock()
		snap.Streams = append(snap.Streams, ss)
	}
	return snap
}

// extract captures one subscription's maintenance and published state.
// The caller holds ls.mu.
func (s *Subscription) extract() SubState {
	st := SubState{
		ID:       s.id,
		Spec:     specState(s.spec),
		HavePlan: s.havePlan,
		Plan:     s.plan,
		Bucket:   s.bucket,
		NextRoot: s.nextRoot,
		Batches:  make([]BatchState, 0, len(s.batches)),
		Answer:   s.Answer(),
		Stats:    s.Stats(),
	}
	if s.bootSrc != nil {
		boot := *s.bootSrc
		st.Boot = &boot
	}
	for _, b := range s.batches {
		st.Batches = append(st.Batches, BatchState{
			Tick: b.tick, F0: b.f0, InitLevel: b.initLevel, Plan: b.plan,
			Roots: b.roots, Steps: b.steps, Agg: b.agg, Groups: b.groups,
		})
	}
	return st
}

// Restore loads a snapshot into a freshly constructed engine, rebuilding
// each stream's dynamics and each subscription's observer through the
// resolver. The engine must be empty (no streams, no subscriptions) and
// configured with the same numerics-relevant settings the snapshot was
// taken under.
func (e *Engine) Restore(snap EngineSnapshot, resolve Resolver) error {
	if resolve == nil {
		return errors.New("stream: Restore needs a resolver")
	}
	if have := configState(e.cfg); have != snap.Config {
		return fmt.Errorf("stream: snapshot was maintained under engine settings %+v, this engine runs %+v — restart with the original settings", snap.Config, have)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.streams) != 0 || e.nextSub.Load() != 0 {
		return errors.New("stream: Restore requires an empty engine")
	}

	nextSub := snap.NextSub
	for _, ss := range snap.Streams {
		proc, observers, err := resolve(ss.Name, ss.ModelID)
		if err != nil {
			return fmt.Errorf("stream: restoring %q: %w", ss.Name, err)
		}
		if proc == nil || ss.State == nil {
			return fmt.Errorf("stream: restoring %q: nil process or state", ss.Name)
		}
		ls := &liveState{
			name:    ss.Name,
			modelID: ss.ModelID,
			proc:    proc,
			state:   ss.State.Clone(),
			tick:    ss.Tick,
			lsn:     ss.LSN,
			subs:    make(map[uint64]*Subscription, len(ss.Subs)),
		}
		for _, sst := range ss.Subs {
			obs, ok := observers[sst.Spec.ObserverID]
			if !ok {
				return fmt.Errorf("stream: restoring subscription %d on %q: model %q has no observer %q — durable subscriptions must use registered observer names", sst.ID, ss.Name, ss.ModelID, sst.Spec.ObserverID)
			}
			sub := &Subscription{
				id:       sst.ID,
				engine:   e,
				ls:       ls,
				spec:     sst.Spec.subSpec(obs),
				havePlan: sst.HavePlan,
				plan:     sst.Plan,
				bucket:   sst.Bucket,
				nextRoot: sst.NextRoot,
				answer:   sst.Answer,
				stats:    sst.Stats,
				notify:   make(chan struct{}),
			}
			if sst.Boot != nil {
				boot := *sst.Boot
				sub.bootSrc = &boot
			}
			for _, bs := range sst.Batches {
				sub.batches = append(sub.batches, &batch{
					tick: bs.Tick, f0: bs.F0, initLevel: bs.InitLevel, plan: bs.Plan,
					roots: bs.Roots, steps: bs.Steps, agg: bs.Agg, groups: bs.Groups,
				})
			}
			ls.subs[sub.id] = sub
			if sub.id > nextSub {
				nextSub = sub.id
			}
		}
		e.streams[ss.Name] = ls
	}
	e.nextSub.Store(nextSub)
	e.ticks.Store(snap.Counters.Ticks)
	e.refreshes.Store(snap.Counters.Refreshes)
	e.freshRoots.Store(snap.Counters.FreshRoots)
	e.freshSteps.Store(snap.Counters.FreshSteps)
	e.searchSteps.Store(snap.Counters.SearchSteps)
	e.replans.Store(snap.Counters.Replans)
	e.dropped.Store(snap.Counters.Dropped)
	return nil
}

// Apply replays one journaled event onto the engine — the recovery path
// after Restore. Events the snapshot already includes (lsn at or below the
// event's stream's restored LSN) are skipped, so a snapshot taken mid-WAL
// composes with the records around it. Attach the journal only after the
// whole tail is applied.
func (e *Engine) Apply(ctx context.Context, lsn int64, ev JournalEvent, resolve Resolver) error {
	switch ev := ev.(type) {
	case EvRegistered:
		if ls, err := e.stream(ev.Name); err == nil {
			ls.mu.Lock()
			done := ls.lsn >= lsn
			ls.mu.Unlock()
			if done {
				return nil
			}
		}
		proc, _, err := resolve(ev.Name, ev.ModelID)
		if err != nil {
			return fmt.Errorf("stream: replaying registration of %q: %w", ev.Name, err)
		}
		if err := e.RegisterModel(ev.Name, ev.ModelID, proc, ev.State); err != nil {
			return err
		}
		return e.stampLSN(ev.Name, lsn)

	case EvSubscribed:
		ls, err := e.stream(ev.Spec.Stream)
		if err != nil {
			return fmt.Errorf("stream: replaying subscription %d: %w", ev.ID, err)
		}
		ls.mu.Lock()
		done := ls.lsn >= lsn
		ls.mu.Unlock()
		if done {
			return nil
		}
		_, observers, err := resolve(ls.name, ls.modelID)
		if err != nil {
			return fmt.Errorf("stream: replaying subscription %d: %w", ev.ID, err)
		}
		obs, ok := observers[ev.Spec.ObserverID]
		if !ok {
			return fmt.Errorf("stream: replaying subscription %d: model %q has no observer %q", ev.ID, ls.modelID, ev.Spec.ObserverID)
		}
		if _, err := e.subscribe(ctx, ev.Spec.subSpec(obs), ev.ID, lsn, true); err != nil {
			return fmt.Errorf("stream: replaying subscription %d: %w", ev.ID, err)
		}
		if next := e.nextSub.Load(); ev.ID > next {
			e.nextSub.Store(ev.ID)
		}
		return nil

	case EvClosed:
		sub := e.findSub(ev.ID)
		if sub == nil {
			return nil // closed before the snapshot; nothing to replay
		}
		sub.ls.mu.Lock()
		done := sub.ls.lsn >= lsn
		if !done {
			sub.ls.lsn = lsn
		}
		sub.ls.mu.Unlock()
		if !done {
			sub.Close()
		}
		return nil

	case EvUpdated:
		ls, err := e.stream(ev.Name)
		if err != nil {
			return fmt.Errorf("stream: replaying update of %q: %w", ev.Name, err)
		}
		ls.mu.Lock()
		defer ls.mu.Unlock()
		if ls.lsn >= lsn {
			return nil
		}
		ls.state = ev.State.Clone()
		ls.tick++
		ls.lsn = lsn
		e.ticks.Add(1)
		// Per-subscription refresh errors are tolerated exactly as the
		// live Update path tolerates them (the next tick retries): the
		// event was journaled before the live outcome was known, so
		// failing recovery over one would turn a tolerated transient —
		// a cancelled request, a brief backend outage — into a data
		// directory that can never boot. A refresh that failed live and
		// succeeds on replay (or vice versa) voids bit-for-bit equality
		// until the next checkpoint, the documented boundary for
		// non-deterministic mid-tick failures.
		e.refreshLocked(ctx, ls)
		return nil

	default:
		return fmt.Errorf("stream: unknown journal event %T", ev)
	}
}

// stampLSN records lsn as applied on the named stream.
func (e *Engine) stampLSN(name string, lsn int64) error {
	ls, err := e.stream(name)
	if err != nil {
		return err
	}
	ls.mu.Lock()
	if lsn > ls.lsn {
		ls.lsn = lsn
	}
	ls.mu.Unlock()
	return nil
}

// Subscription finds a live subscription by its engine-unique ID — the
// handle front ends re-bind their own identifiers to after recovery.
func (e *Engine) Subscription(id uint64) (*Subscription, bool) {
	sub := e.findSub(id)
	return sub, sub != nil
}

// Subscriptions lists every live subscription, ordered by ID. Recovery
// paths use it to re-attach to (or reap) standing queries whose owner
// handles died with the previous process.
func (e *Engine) Subscriptions() []*Subscription {
	e.mu.RLock()
	streams := make([]*liveState, 0, len(e.streams))
	//durlint:ignore maporder intermediate only; the derived subscription list is sorted by ID below
	for _, ls := range e.streams {
		streams = append(streams, ls)
	}
	e.mu.RUnlock()
	var out []*Subscription
	for _, ls := range streams {
		ls.mu.Lock()
		for _, sub := range ls.subs {
			out = append(out, sub)
		}
		ls.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// findSub locates a subscription by ID across all streams.
func (e *Engine) findSub(id uint64) *Subscription {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, ls := range e.streams {
		ls.mu.Lock()
		sub, ok := ls.subs[id]
		ls.mu.Unlock()
		if ok {
			return sub
		}
	}
	return nil
}
