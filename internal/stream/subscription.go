package stream

import (
	"context"
	"errors"
	"fmt"
	"math"

	"durability/internal/core"
	"durability/internal/exec"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
	"sync"
)

// ErrSubscriptionClosed reports use of a closed subscription.
var ErrSubscriptionClosed = errors.New("stream: subscription closed")

// SubSpec describes one standing durability query: the probability that
// Obs(state) >= Beta at any time within Horizon steps of the live state
// it is registered against.
type SubSpec struct {
	Stream     string              // live state the query stands against
	Obs        stochastic.Observer // quantity thresholded
	ObserverID string              // observer identity for plan caching
	Beta       float64             // threshold
	Horizon    int                 // sliding horizon, in steps from "now"

	Ratio      int    // splitting ratio (default 3)
	Seed       uint64 // base random seed (default 1)
	SimWorkers int    // parallel simulation workers per refresh (default 1)

	// DriftTol and MaxAge override the engine's survival tolerance and
	// age cap for this subscription (0 keeps the engine default). They
	// are the staleness/cost dial: a wider tolerance keeps root paths
	// alive longer and makes ticks cheaper, but lets the answer lag a
	// faster-moving state further.
	DriftTol float64
	MaxAge   int64

	// Stop is the quality target each maintained answer is restored to —
	// typically a relative-error or CI-width rule, optionally alongside a
	// Budget bounding the root pool. Default: 10% relative error.
	Stop mc.Any
}

// driftTol resolves the subscription's survival tolerance.
func (s SubSpec) driftTol(cfg Config) float64 {
	if s.DriftTol > 0 {
		return s.DriftTol
	}
	return cfg.DriftTol
}

// maxAge resolves the subscription's batch age cap.
func (s SubSpec) maxAge(cfg Config) int64 {
	if s.MaxAge > 0 {
		return s.MaxAge
	}
	return cfg.MaxAgeTicks
}

func (s SubSpec) withDefaults() (SubSpec, error) {
	if s.Stream == "" {
		return s, errors.New("stream: subscription names no stream")
	}
	if s.Obs == nil {
		return s, errors.New("stream: subscription has no observer")
	}
	if s.Beta <= 0 {
		return s, fmt.Errorf("stream: threshold %v must be positive", s.Beta)
	}
	if s.Horizon <= 0 {
		return s, fmt.Errorf("stream: horizon %d must be positive", s.Horizon)
	}
	if s.Ratio <= 0 {
		s.Ratio = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.SimWorkers <= 0 {
		s.SimWorkers = 1
	}
	if len(s.Stop) == 0 {
		s.Stop = mc.Any{mc.RETarget{Target: 0.10}}
	}
	return s, nil
}

// Answer is one maintained answer to a standing query, together with the
// accounting of what its refresh cost.
type Answer struct {
	// Result is the estimate over the current root pool. Paths and Steps
	// describe the whole surviving pool (the cost embodied in the
	// answer), not this refresh. Result carries no wall time: refresh
	// durations live in the engine's telemetry (Config.Metrics), never on
	// the answer, so checkpointed state is deterministic by construction.
	Result mc.Result
	// Tick is the stream tick the answer corresponds to.
	Tick int64
	// Satisfied reports that the condition holds at the live state right
	// now, making the answer trivially 1 with no sampling.
	Satisfied bool

	// Per-refresh maintenance cost: fresh root trees simulated, their
	// simulator invocations, and any plan-search invocations paid.
	FreshRoots  int64
	FreshSteps  int64
	SearchSteps int64

	// Pool movement: SurvivedRoots are roots carried over from previous
	// ticks that still contribute to this answer; DroppedRoots were
	// deleted by age; PoolRoots is the whole retained pool, including
	// dormant roots kept for revival if the state drifts back to them.
	SurvivedRoots int64
	DroppedRoots  int64
	PoolRoots     int64

	// Plan handling: Replanned marks a drift-bucket crossing that
	// re-resolved the plan; PlanCached marks the resolution coming from
	// the shared plan cache rather than a fresh search.
	Replanned  bool
	PlanCached bool

	// Capped reports the refresh hit MaxRefreshSteps before restoring
	// the quality target — the answer is the best available, below
	// target.
	Capped bool
}

// P returns the maintained point estimate.
func (a Answer) P() float64 { return a.Result.P }

// Refresh is the outcome of maintaining one subscription on one update.
type Refresh struct {
	SubID  uint64
	Answer Answer
	Err    error
}

// bootstrapSource derives a subscription's dedicated resampling stream:
// the base seed stays fixed and the subscription id selects a substream
// in the reserved range [1<<62, 1<<62 + 2^61), disjoint from the root
// substreams (which count up from zero), the live-feed sources parked in
// [1<<60, 1<<61), the coordination-loop resampler at 1<<61 and the
// single-machine sampler's resampler at 1<<63. Folding the id into the
// seed instead (the old scheme, seed^id) let distinct subscriptions
// collide — seedA^idA == seedB^idB shares one bootstrap sequence and
// correlates their CI estimates.
func bootstrapSource(seed, id uint64) *rng.Source {
	return rng.NewStream(seed, 1<<62|id)
}

// batch is the unit of root survival: the g-MLSS sufficient statistics
// of a small set of root trees simulated from one snapshot of the live
// state, with equal-size bootstrap groups for variance estimation. A
// batch contributes to the answer while it is "active" — simulated under
// the current plan, from the current start level, with a start value
// within the drift tolerance of the live state. An inactive batch stays
// in the pool dormant and revives when the state drifts back into its
// neighborhood (the revisit case); only age deletes it.
type batch struct {
	tick      int64     // tick the roots were simulated at
	f0        float64   // normalized start value z/beta at simulation time
	initLevel int       // start level under the plan at simulation time
	plan      core.Plan // the plan the trees were split under
	roots     int64
	steps     int64
	agg       core.Counters
	groups    []core.Counters

	// active marks the batch as contributing to the latest answer. It is
	// in-memory telemetry bookkeeping only (revival detection) and is
	// deliberately absent from the persisted BatchState: restored batches
	// start dormant and the first refresh recomputes contribution.
	active bool
}

// SubStats is lifetime cost accounting for one subscription.
type SubStats struct {
	Refreshes   int64 // refreshes performed (including the initial one)
	FreshRoots  int64 // root trees simulated
	FreshSteps  int64 // simulator invocations spent on fresh roots
	SearchSteps int64 // plan-search invocations paid by this subscription
	Replans     int64 // drift-bucket crossings that re-resolved the plan
}

// Subscription is one registered standing query. Its answer is refreshed
// by the engine on every update of the stream it stands against; readers
// poll Answer or block on Wait.
type Subscription struct {
	id     uint64
	engine *Engine
	ls     *liveState
	spec   SubSpec

	// Maintenance state, touched only while holding ls.mu (refreshes of
	// one stream are serialized by the engine).
	havePlan  bool
	plan      core.Plan
	bucket    int // drift bucket the plan was resolved for
	batches   []*batch
	nextRoot  int64 // next root index; strictly increasing so substreams never repeat
	bootSrc   *rng.Source
	destroyed bool // removed from ls.subs

	// Published state, guarded by mu so readers never contend with a
	// running refresh.
	mu     sync.Mutex
	answer Answer
	notify chan struct{} // closed and replaced on every stored answer
	closed bool
	stats  SubStats
}

// ID returns the subscription's engine-unique identifier.
func (s *Subscription) ID() uint64 { return s.id }

// Stream returns the name of the live state the query stands against.
func (s *Subscription) Stream() string { return s.ls.name }

// Spec returns the subscription's (defaulted) specification.
func (s *Subscription) Spec() SubSpec { return s.spec }

// Answer returns the latest maintained answer.
func (s *Subscription) Answer() Answer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.answer
}

// Stats returns the subscription's lifetime cost accounting.
func (s *Subscription) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// PlanInfo is a point-in-time view of a subscription's resolved plan for
// introspection front ends (the per-subscription detail of GET /streams).
type PlanInfo struct {
	Bucket     int       // drift bucket the plan was resolved for
	Boundaries []float64 // the plan's interior level boundaries
	Ratios     []int     // per-level ratios (nil for uniform-ratio plans)
	// Key is the plan-cache key the plan — and its crossing-statistics
	// ledger entry — lives under; HaveKey is false when the engine's
	// runner has no cache (every refresh then pays its own search and
	// nothing is booked).
	Key     serve.PlanKey
	HaveKey bool
}

// PlanInfo returns the subscription's current plan view; ok is false
// while no refresh has resolved a plan yet (or after destruction).
func (s *Subscription) PlanInfo() (PlanInfo, bool) {
	s.ls.mu.Lock()
	defer s.ls.mu.Unlock()
	if !s.havePlan || s.destroyed {
		return PlanInfo{}, false
	}
	info := PlanInfo{
		Bucket:     s.bucket,
		Boundaries: append([]float64(nil), s.plan.Boundaries...),
		Ratios:     append([]int(nil), s.plan.Ratios...),
	}
	info.Key, info.HaveKey = s.engine.runner.PlanKeyFor(s.keySpec())
	return info, true
}

// keySpec builds the minimal spec whose plan key matches the one refresh
// resolves plans under — the key depends only on identity fields, never
// on the live state itself. The caller holds ls.mu.
func (s *Subscription) keySpec() serve.Spec {
	return serve.Spec{
		ModelID:     s.ls.name,
		ObserverID:  s.spec.ObserverID,
		Beta:        s.spec.Beta,
		Horizon:     s.spec.Horizon,
		Method:      serve.GMLSS,
		PlanMode:    serve.PlanAuto,
		Ratio:       s.spec.Ratio,
		StartBucket: 1 + s.bucket,
	}
}

// Wait blocks until the maintained answer corresponds to a tick later
// than since, then returns it — the long-poll primitive network front
// ends build on. It returns early with the context's error on
// cancellation, or ErrSubscriptionClosed once the subscription closes.
func (s *Subscription) Wait(ctx context.Context, since int64) (Answer, error) {
	s.mu.Lock()
	for {
		if s.answer.Tick > since {
			ans := s.answer
			s.mu.Unlock()
			return ans, nil
		}
		if s.closed {
			s.mu.Unlock()
			return Answer{}, ErrSubscriptionClosed
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Answer{}, ctx.Err()
		}
		s.mu.Lock()
	}
}

// Publish is the single-subscriber convenience for Engine.Update: it
// publishes a new snapshot of the subscription's stream (refreshing every
// subscription on it) and returns this subscription's refreshed answer.
func (s *Subscription) Publish(ctx context.Context, st stochastic.State) (Answer, error) {
	refreshes, err := s.engine.Update(ctx, s.ls.name, st)
	if err != nil {
		return Answer{}, err
	}
	for _, r := range refreshes {
		if r.SubID == s.id {
			return r.Answer, r.Err
		}
	}
	return Answer{}, ErrSubscriptionClosed
}

// Close deregisters the subscription, releases its root pool and wakes
// any Wait callers. It is idempotent.
func (s *Subscription) Close() {
	s.ls.mu.Lock()
	if !s.destroyed {
		s.destroyed = true
		delete(s.ls.subs, s.id)
		s.batches = nil
		// A journal failure cannot abort a close (Close returns nothing);
		// the store keeps the error sticky and the next checkpoint — which
		// captures the subscription's absence — surfaces it.
		if lsn, err := s.engine.record(EvClosed{ID: s.id}); err == nil && lsn > s.ls.lsn {
			s.ls.lsn = lsn
		}
	}
	s.ls.mu.Unlock()

	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.notify)
	}
	s.mu.Unlock()
}

// forceReplan drops the plan and the root pool; the caller holds ls.mu.
// It is the invalidation hook Register uses when a stream's dynamics are
// replaced: plans and counters simulated under the old process must not
// leak into answers under the new one.
func (s *Subscription) forceReplan() {
	s.havePlan = false
	s.batches = nil
}

// store publishes a refreshed answer and updates the lifetime counters.
func (s *Subscription) store(ans Answer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.answer = ans
	s.stats.Refreshes++
	s.stats.FreshRoots += ans.FreshRoots
	s.stats.FreshSteps += ans.FreshSteps
	s.stats.SearchSteps += ans.SearchSteps
	if ans.Replanned {
		s.stats.Replans++
	}
	close(s.notify)
	s.notify = make(chan struct{})
}

// refresh maintains the answer against a new snapshot of the live state.
// The caller holds ls.mu, which serializes refreshes per stream; proc and
// state are the stream's current dynamics and snapshot, tick its clock.
//
// The maintenance sequence is: resolve the plan (re-searching only when
// the normalized start value crossed a drift-bucket boundary, and then
// usually hitting the shared plan cache), expire aged batches, select
// the surviving batches still within drift tolerance of the new state,
// and top up with fresh root trees from the new state until the quality
// target holds again.
func (s *Subscription) refresh(ctx context.Context, proc stochastic.Process, state stochastic.State, tick int64) (Answer, error) {
	e := s.engine
	cfg := e.cfg
	began := telemetry.Now()
	ans := Answer{Tick: tick}
	defer e.refreshes.Add(1)

	if s.bootSrc == nil {
		s.bootSrc = bootstrapSource(s.spec.Seed, s.id)
	}

	value := core.ThresholdValue(s.spec.Obs, s.spec.Beta)
	f0 := s.spec.Obs(state) / s.spec.Beta
	if f0 >= 1 {
		// The condition holds at the live state itself: the answer is 1
		// with certainty and no simulation. The pool is left in place —
		// if the state recedes below the threshold, surviving batches
		// resume contributing (age and drift pruning still apply).
		ans.Satisfied = true
		ans.Result = mc.Result{P: 1}
		s.store(ans)
		cfg.Metrics.ObserveRefresh(telemetry.Since(began), 0, 0)
		return ans, nil
	}

	bucket := int(math.Floor(math.Max(f0, 0) / cfg.StartBucketWidth))
	sspec := serve.Spec{
		Proc:       stochastic.Pin(proc, state),
		Obs:        s.spec.Obs,
		ModelID:    s.ls.name,
		ObserverID: s.spec.ObserverID,
		Beta:       s.spec.Beta,
		Horizon:    s.spec.Horizon,
		Method:     serve.GMLSS,
		PlanMode:   serve.PlanAuto,
		Ratio:      s.spec.Ratio,
		Seed:       s.spec.Seed,
		SimWorkers: s.spec.SimWorkers,
		// Offset by one so standing-query keys can never alias the
		// constant StartBucket 0 of point-in-time queries, whose plans
		// are searched from the model's canonical initial state. f0 is
		// clamped at 0 above, so the offset bucket is always >= 1.
		StartBucket: 1 + bucket,
		Stop:        s.spec.Stop,
	}
	if !s.havePlan || bucket != s.bucket {
		plan, meta, err := e.runner.ResolvePlan(ctx, &sspec)
		ans.SearchSteps = meta.SearchSteps
		e.searchSteps.Add(meta.SearchSteps)
		if err != nil {
			// Keep the previous plan and answer; the next update retries.
			return s.Answer(), fmt.Errorf("stream: resolving plan: %w", err)
		}
		ans.Replanned = s.havePlan
		ans.PlanCached = meta.CacheHit
		if s.havePlan {
			e.replans.Add(1)
		}
		s.plan, s.bucket, s.havePlan = plan, bucket, true
	}
	m := s.plan.M()
	initLevel := s.plan.LevelOf(value(state, 0))

	// Age pruning bounds the pool; everything else is kept, dormant
	// batches included, so a revisit finds its roots alive.
	s.expire(tick, &ans)

	// Survival: a batch contributes to this answer when its trees were
	// split under the current plan, start from the current level, and its
	// start value is within the drift tolerance of the new state.
	tol := s.spec.driftTol(cfg)
	var revived int64
	active := make([]*batch, 0, len(s.batches)+1)
	for _, b := range s.batches {
		ans.PoolRoots += b.roots
		contributing := b.initLevel == initLevel && math.Abs(b.f0-f0) <= tol && b.plan.Equal(s.plan)
		if contributing {
			active = append(active, b)
			ans.SurvivedRoots += b.roots
			if !b.active {
				// A dormant batch the state drifted back to — the revisit
				// case the pool retains dormant batches for.
				revived++
			}
		}
		b.active = contributing
	}

	// Top up with fresh root trees from the new state until the quality
	// target is restored. The fresh simulation runs through the engine's
	// execution backend: in-process by default, or sharded across a
	// worker fleet — the backend's determinism invariant (root i draws
	// from substream i regardless of placement) keeps the maintained
	// answer identical either way.
	task := exec.Task{
		Proc:       proc,
		Obs:        s.spec.Obs,
		Model:      s.ls.modelID,
		Observer:   s.spec.ObserverID,
		Start:      state,
		Beta:       s.spec.Beta,
		Horizon:    s.spec.Horizon,
		Boundaries: s.plan.Boundaries,
		Ratio:      s.spec.Ratio,
		Seed:       s.spec.Seed,
		SimWorkers: s.spec.SimWorkers,
	}
	res := s.evaluate(active, m, initLevel)
	// fresh accumulates this refresh's top-up counters — each shard is
	// already folded in root order by the backend — for the plan-quality
	// ledger booking below.
	fresh := core.NewCounters(m)
	var err error
	for !s.spec.Stop.Done(res) {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			ans.Capped = true
			break
		}
		if ans.FreshSteps >= cfg.MaxRefreshSteps {
			ans.Capped = true
			break
		}
		lo, hi := s.nextRoot, s.nextRoot+int64(cfg.TopUpRoots)
		shard, serr := cfg.Exec.RunRoots(ctx, task, lo, hi, cfg.GroupRoots)
		if serr != nil {
			err = serr
			ans.Capped = true
			break
		}
		s.nextRoot = hi
		ans.FreshRoots += shard.Roots
		ans.FreshSteps += shard.Steps
		ans.PoolRoots += shard.Roots
		e.freshRoots.Add(shard.Roots)
		e.freshSteps.Add(shard.Steps)
		b := &batch{
			tick: tick, f0: f0, initLevel: initLevel, plan: s.plan,
			roots: shard.Roots, steps: shard.Steps,
			agg: shard.Agg, groups: shard.Groups,
			active: true,
		}
		s.batches = append(s.batches, b)
		active = append(active, b)
		fresh.Add(shard.Agg)
		res = s.evaluate(active, m, initLevel)
	}
	if err == nil && ans.FreshRoots > 0 {
		// Book the refresh's fresh counters under the standing query's
		// plan key. Error paths are excluded (a cancellation is not
		// deterministic); a deterministic budget cap still books.
		e.runner.BookRun(sspec, s.plan, fresh, ans.FreshRoots, ans.FreshSteps)
	}
	ans.Result = res
	s.store(ans)
	cfg.Metrics.ObserveRefresh(telemetry.Since(began), ans.FreshSteps, revived)
	return ans, err
}

// expire deletes batches older than MaxAgeTicks, booking their roots into
// the answer's drop accounting. The caller holds ls.mu.
func (s *Subscription) expire(tick int64, ans *Answer) {
	maxAge := s.spec.maxAge(s.engine.cfg)
	kept := s.batches[:0]
	for _, b := range s.batches {
		if tick-b.tick > maxAge {
			ans.DroppedRoots += b.roots
			s.engine.dropped.Add(b.roots)
			continue
		}
		kept = append(kept, b)
	}
	// Zero the tail so dropped batches are collectable.
	for i := len(kept); i < len(s.batches); i++ {
		s.batches[i] = nil
	}
	s.batches = kept
}

// evaluate computes the merged estimate and bootstrap variance over the
// active batches. The caller holds ls.mu.
func (s *Subscription) evaluate(active []*batch, m, initLevel int) mc.Result {
	agg := core.NewCounters(m)
	var roots, steps int64
	groups := make([]core.Counters, 0, len(active)*2)
	for _, b := range active {
		agg.Add(b.agg)
		roots += b.roots
		steps += b.steps
		groups = append(groups, b.groups...)
	}
	res := mc.Result{Paths: roots, Steps: steps, Hits: int64(agg.Hits)}
	if roots == 0 {
		res.Variance = math.Inf(1)
		return res
	}
	res.P = core.EstimateFromCounters(agg, roots, m, initLevel)
	res.Variance = core.BootstrapVarianceFromGroups(groups, int64(s.engine.cfg.GroupRoots), m, initLevel, s.engine.cfg.BootstrapReps, s.bootSrc)
	return res
}
