package stream

import (
	"context"
	"net"
	"testing"

	"durability/internal/cluster"
	"durability/internal/exec"
	"durability/internal/stochastic"
)

// startChainWorkers spins n in-process rpc shard workers that can rebuild
// the test chain by name.
func startChainWorkers(t *testing.T, n int) []string {
	t.Helper()
	reg := cluster.Registry{
		"chain": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return stochastic.BirthDeathChain(10, 0.45, 0), map[string]stochastic.Observer{"index": stochastic.ChainIndex}, nil
		},
	}
	addrs, stop, err := cluster.ServeLocal(reg, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return addrs
}

// slamAddr returns a "worker" whose dial succeeds but whose every call
// fails — a machine dropping right after the engine starts using it.
func slamAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return ln.Addr().String()
}

// maintain drives one engine through a fixed live-state trajectory and
// returns every refreshed answer (the initial subscribe's included).
func maintain(t *testing.T, backend exec.Executor, trajectory []int) []Answer {
	t.Helper()
	env := newChainEnv()
	eng := NewEngine(Config{Exec: backend})
	if err := eng.Register("chain", env.proc, &stochastic.ChainState{I: 0}); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(), env.spec())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	out := []Answer{sub.Answer()}
	for _, i := range trajectory {
		refreshes, err := eng.Update(context.Background(), "chain", &stochastic.ChainState{I: i})
		if err != nil {
			t.Fatal(err)
		}
		if len(refreshes) != 1 || refreshes[0].Err != nil {
			t.Fatalf("refreshes %+v", refreshes)
		}
		out = append(out, refreshes[0].Answer)
	}
	return out
}

// compareAnswers asserts two maintenance histories are bit-for-bit equal.
func compareAnswers(t *testing.T, label string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers vs %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Result.P != w.Result.P || g.Result.Variance != w.Result.Variance {
			t.Fatalf("%s: answer %d (P=%v, Var=%v) differs from local (P=%v, Var=%v)",
				label, i, g.Result.P, g.Result.Variance, w.Result.P, w.Result.Variance)
		}
		if g.FreshRoots != w.FreshRoots || g.FreshSteps != w.FreshSteps || g.SurvivedRoots != w.SurvivedRoots {
			t.Fatalf("%s: answer %d cost (fresh %d roots/%d steps, survived %d) differs from local (%d/%d, %d)",
				label, i, g.FreshRoots, g.FreshSteps, g.SurvivedRoots, w.FreshRoots, w.FreshSteps, w.SurvivedRoots)
		}
	}
}

// A standing query maintained over the cluster backend must be bit-for-
// bit the standing query maintained in-process: same answers, same
// variance, same pool movement, tick for tick — sharding is a placement
// decision, not a numerics change. The spec's ObserverID doubles as the
// worker-registry observer name.
func TestClusterBackedRefreshMatchesLocal(t *testing.T) {
	// The trajectory wanders enough to exercise survival pruning, top-ups
	// and (at the end) a drift-bucket crossing.
	trajectory := []int{0, 1, 0, 1, 2, 3, 2, 1, 0, 3, 4}
	local := maintain(t, exec.Local{}, trajectory)

	backend := exec.NewCluster(startChainWorkers(t, 2)...)
	defer backend.Close()
	clustered := maintain(t, backend, trajectory)
	compareAnswers(t, "cluster", clustered, local)
}

// A worker dying mid-maintenance must cost a retry, not the answer: the
// engine's refreshes keep matching the local history bit for bit.
func TestClusterBackedRefreshSurvivesDeadWorker(t *testing.T) {
	trajectory := []int{0, 1, 2, 1, 0, 2}
	local := maintain(t, exec.Local{}, trajectory)

	backend := exec.NewCluster(slamAddr(t), startChainWorkers(t, 1)[0])
	defer backend.Close()
	clustered := maintain(t, backend, trajectory)
	compareAnswers(t, "cluster with dead worker", clustered, local)
}

// The bootstrap resampling stream must differ between subscriptions even
// when (seed ^ id) collides — the old derivation collapsed such pairs
// onto one sequence, correlating their CI estimates.
func TestBootstrapSourcesDistinctOnSeedIDCollision(t *testing.T) {
	// seedA^idA == 6^1 == 7 == 5^2 == seedB^idB: collided under the old
	// scheme.
	a := bootstrapSource(6, 1)
	b := bootstrapSource(5, 2)
	same := true
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("colliding (seed, id) pairs draw the same bootstrap sequence")
	}

	// And the fix must not depend on the id alone: distinct seeds with
	// the same id stay distinct too.
	c := bootstrapSource(6, 3)
	d := bootstrapSource(5, 3)
	same = true
	for i := 0; i < 16; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds with one id draw the same bootstrap sequence")
	}
}
