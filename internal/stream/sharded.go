package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"durability/internal/stochastic"
)

// ShardedEngine partitions subscriptions across N engines by consistent
// hash of (stream, subscription). The exec seam already shards *within* a
// refresh (fresh roots of one subscription fan across workers); this
// shards *across* subscriptions: one tick fans out to every shard
// concurrently, each shard refreshing its own subscription set, and the
// per-shard results merge back in sorted, deterministic order.
//
// Bit-for-bit parity with a single engine is a consequence of the
// engine's determinism invariant, restated one level up: a subscription's
// answer depends only on (spec, ID, the state sequence it observed) —
// its bootstrap generator is seeded from its ID, its fresh roots draw
// substreams indexed from its own root counter, and plan searches are
// pure functions of their cache key. Placement therefore cannot leak into
// answers, so 4 shards and 1 shard produce identical bytes; the test
// suite enforces this.
//
// Each shard is also its own recovery lineage: give each shard its own
// journal (SetJournal on Shard(i)) backed by its own persist.Store, and
// the shards checkpoint, replay and fail over independently. Every stream
// is registered on every shard, so one shard's WAL replays without the
// others; after a crash the shards may have applied different tick
// prefixes, which CatchUp reconciles by republishing the missing states.
type ShardedEngine struct {
	ring    *Ring
	engines []*Engine
	nextSub atomic.Uint64
}

// NewSharded builds shards engines over the shared config (they share its
// Runner — and so its plan cache — and its Exec; plans are pure functions
// of their key, so sharing them across shards is free determinism-wise).
// replicas tunes ring vnodes per shard (<= 0 selects the default).
func NewSharded(cfg Config, shards, replicas int) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	cfg = cfg.withDefaults()
	se := &ShardedEngine{ring: NewRing(shards, replicas)}
	for i := 0; i < shards; i++ {
		se.engines = append(se.engines, NewEngine(cfg))
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.engines) }

// Shard returns the i'th engine, for per-shard persistence wiring
// (SetJournal, Snapshot, Restore, Apply).
func (se *ShardedEngine) Shard(i int) *Engine { return se.engines[i] }

// Ring returns the placement ring.
func (se *ShardedEngine) Ring() *Ring { return se.ring }

// Register creates the named live state on every shard.
func (se *ShardedEngine) Register(name string, proc stochastic.Process, initial stochastic.State) error {
	return se.RegisterModel(name, name, proc, initial)
}

// RegisterModel is Register with an explicit model identifier.
func (se *ShardedEngine) RegisterModel(name, modelID string, proc stochastic.Process, initial stochastic.State) error {
	for i, eng := range se.engines {
		if err := eng.RegisterModel(name, modelID, proc, initial); err != nil {
			return fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	return nil
}

// Ensure registers the named live state on every shard if any lacks it.
func (se *ShardedEngine) Ensure(name string, proc stochastic.Process, initial stochastic.State) error {
	for i, eng := range se.engines {
		if err := eng.Ensure(name, proc, initial); err != nil {
			return fmt.Errorf("stream: shard %d: %w", i, err)
		}
	}
	return nil
}

// Has reports whether the named stream exists (on shard 0; registration
// is all-shards).
func (se *ShardedEngine) Has(name string) bool { return se.engines[0].Has(name) }

// Tick returns the named stream's tick as the minimum over shards — the
// tick every shard has fully applied. The shards only diverge transiently
// (a crash between per-shard journal writes) until CatchUp reconciles.
func (se *ShardedEngine) Tick(name string) (int64, bool) {
	var min int64
	for i, eng := range se.engines {
		t, ok := eng.Tick(name)
		if !ok {
			return 0, false
		}
		if i == 0 || t < min {
			min = t
		}
	}
	return min, true
}

// ShardTicks returns each shard's tick for the named stream.
func (se *ShardedEngine) ShardTicks(name string) ([]int64, bool) {
	out := make([]int64, len(se.engines))
	for i, eng := range se.engines {
		t, ok := eng.Tick(name)
		if !ok {
			return nil, false
		}
		out[i] = t
	}
	return out, true
}

// Subscribe assigns the next subscription ID from the shared sequence,
// places it by consistent hash of (stream, id), and registers it on the
// owning shard. The ID sequence matches what a single engine would assign
// for the same subscribe order, which is half of bit-for-bit parity (the
// other half is per-subscription numeric independence).
func (se *ShardedEngine) Subscribe(ctx context.Context, spec SubSpec) (*Subscription, error) {
	id := se.nextSub.Add(1)
	shard := se.ring.Shard(spec.Stream, id)
	return se.engines[shard].SubscribeAssigned(ctx, spec, id)
}

// SyncNextSub resumes the shared ID sequence from the shards — call after
// restoring or replaying per-shard state.
func (se *ShardedEngine) SyncNextSub() {
	var max uint64
	for _, eng := range se.engines {
		if m := eng.MaxSubID(); m > max {
			max = m
		}
	}
	se.nextSub.Store(max)
}

// Update publishes the state to every shard concurrently and merges the
// per-shard refreshes, ordered by subscription ID — the order a single
// engine would emit. Per-shard errors (a shard whose journal has gone
// sticky, say) are joined in shard order; refreshes from healthy shards
// are still returned, so one wedged shard degrades rather than hides the
// tick.
func (se *ShardedEngine) Update(ctx context.Context, name string, st stochastic.State) ([]Refresh, error) {
	if len(se.engines) == 1 {
		return se.engines[0].Update(ctx, name, st)
	}
	results := make([][]Refresh, len(se.engines))
	errs := make([]error, len(se.engines))
	var wg sync.WaitGroup
	for i, eng := range se.engines {
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			results[i], errs[i] = eng.Update(ctx, name, st)
		}(i, eng)
	}
	wg.Wait()
	var out []Refresh
	for _, rs := range results {
		out = append(out, rs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubID < out[j].SubID })
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return out, errors.Join(joined...)
}

// Subscription finds a live subscription by ID across the shards.
func (se *ShardedEngine) Subscription(id uint64) (*Subscription, bool) {
	for _, eng := range se.engines {
		if sub, ok := eng.Subscription(id); ok {
			return sub, true
		}
	}
	return nil, false
}

// Subscriptions returns every live subscription across the shards,
// ordered by ID.
func (se *ShardedEngine) Subscriptions() []*Subscription {
	var out []*Subscription
	for _, eng := range se.engines {
		out = append(out, eng.Subscriptions()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Stats sums the shard counters. Streams is taken from shard 0
// (registration is all-shards, so every shard sees the same set).
func (se *ShardedEngine) Stats() EngineStats {
	var out EngineStats
	for i, eng := range se.engines {
		st := eng.Stats()
		if i == 0 {
			out.Streams = st.Streams
			out.Ticks = st.Ticks
		}
		out.Subscriptions += st.Subscriptions
		out.Refreshes += st.Refreshes
		out.FreshRoots += st.FreshRoots
		out.FreshSteps += st.FreshSteps
		out.SearchSteps += st.SearchSteps
		out.Replans += st.Replans
		out.DroppedRoots += st.DroppedRoots
	}
	return out
}

// CatchUp reconciles shard tick divergence on one stream after recovery
// or promotion: a crash between per-shard journal writes can leave some
// shards a few ticks behind the stream's authoritative clock. stateAt
// must return the state published at tick k (feeds are deterministic
// functions of (seed, stream, k), so the caller can recompute any tick);
// CatchUp republishes exactly the missing states to each lagging shard,
// which re-runs the same refresh code the uninterrupted server ran —
// determinism makes the result bit-for-bit the state it would have had.
//
// target is the tick to converge on (the stream's clock); shards already
// at target are untouched. Catch-up updates journal normally if a journal
// is attached; recovery paths typically attach journals only afterwards.
func (se *ShardedEngine) CatchUp(ctx context.Context, name string, target int64, stateAt func(tick int64) (stochastic.State, error)) error {
	for i, eng := range se.engines {
		t, ok := eng.Tick(name)
		if !ok {
			continue // stream never registered on this shard's lineage
		}
		if t > target {
			return fmt.Errorf("stream: shard %d is at tick %d, ahead of target %d for %q — lineages diverged", i, t, target, name)
		}
		for k := t + 1; k <= target; k++ {
			st, err := stateAt(k)
			if err != nil {
				return fmt.Errorf("stream: recomputing tick %d of %q: %w", k, name, err)
			}
			if _, err := eng.Update(ctx, name, st); err != nil {
				return fmt.Errorf("stream: shard %d catching up tick %d of %q: %w", i, k, name, err)
			}
		}
	}
	return nil
}
