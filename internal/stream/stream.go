// Package stream maintains standing durability queries over live state
// streams: pay a little per update instead of re-evaluating per query.
//
// The paper answers one durability prediction query at a point in time,
// and internal/serve amortizes the level-search cost across a batch of
// such queries. Production monitoring workloads are different in kind:
// millions of clients register a query once ("will this position go 300
// into profit within 500 days?") and want its answer to track a live
// state stream tick by tick. Recomputing every answer from scratch per
// tick multiplies the whole sampling cost by the tick rate; this package
// instead maintains each answer incrementally, the shift from
// re-evaluation to incremental view maintenance that Berkholz et al.
// ("Answering FO+MOD queries under updates") frame for query answering
// under updates.
//
// Three reuse mechanisms make an update cheap:
//
//   - Plan reuse across drift. Level plans are memoized in the shared
//     serve.PlanCache under drift-bucketed keys: the normalized start
//     value f0 = z(state)/beta is bucketed, and a plan is re-searched
//     only when the live state drifts across a bucket boundary. A stream
//     oscillating inside a bucket — or returning to one it has visited —
//     reuses plans for free.
//
//   - Root survival. Each subscription keeps the g-MLSS sufficient
//     statistics of the root trees it has simulated, in small batches
//     tagged with the start value and tick they were simulated at. On an
//     update, batches whose start value still lies within the drift
//     tolerance of the new state (and which are not too old) survive and
//     keep contributing to the estimate; only the drifted-away remainder
//     is discarded.
//
//   - Quality-targeted top-up. After survival pruning, the engine
//     simulates just enough fresh root trees from the new state to
//     restore the subscription's quality target (CI width or relative
//     error), instead of restarting the sampler from zero.
//
// The answer over a surviving pool mixes root trees whose start states
// differ by at most DriftTol·beta in observed value (and at most
// MaxAgeTicks in age), so a maintained answer is an estimate for a small
// neighborhood of the current state rather than its exact point value —
// the staleness is bounded and configurable, and both knobs trade
// per-tick cost against it. MLSS unbiasedness under any level plan
// (§3.2, §4.1 of the paper) means plan reuse itself never affects
// correctness, only efficiency.
package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"durability/internal/exec"
	"durability/internal/serve"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	// DefaultDriftTol is the survival tolerance: a batch of root trees
	// contributes to the answer while the live state's normalized value
	// stays within this distance of the batch's start value. Durability
	// answers are steeply sensitive to the start state (rare-event
	// probabilities fall roughly exponentially in the distance to the
	// threshold), so the default is tight; subscriptions whose answers
	// vary gently can raise it per SubSpec for cheaper maintenance.
	DefaultDriftTol = 0.025
	// DefaultStartBucketWidth buckets the normalized start value for plan
	// keying; a plan is re-searched only when the state crosses a bucket
	// boundary.
	DefaultStartBucketWidth = 0.25
	// DefaultTopUpRoots is the number of fresh root trees simulated per
	// top-up round.
	DefaultTopUpRoots = 64
	// DefaultGroupRoots is the number of root trees per bootstrap group —
	// the resampling unit for variance estimation over a mixed pool.
	DefaultGroupRoots = 16
	// DefaultMaxAgeTicks expires batches by age even when the state has
	// not drifted, bounding answer staleness on a becalmed stream.
	DefaultMaxAgeTicks = 128
	// DefaultMaxRefreshSteps caps one refresh's fresh simulation, so a
	// quality target that has become unreachable (the event drifted to
	// near-impossible) degrades to a capped answer instead of stalling
	// the whole tick. The value is sized to a few times a typical full
	// cold fill: a fast-moving stream whose pool churns every tick pays
	// at most this much per tick, which keeps even pathological
	// subscriptions (answer pinned near zero, nothing ever surviving)
	// from monopolizing a high-rate ticker.
	DefaultMaxRefreshSteps = 5_000_000
	// DefaultBootstrapReps is the number of bootstrap replicates per
	// variance evaluation.
	DefaultBootstrapReps = 200
)

// Config tunes an Engine. The zero value selects every default.
type Config struct {
	// Runner executes plan searches; its PlanCache (when present) is
	// shared with any other subsystem holding the same runner, so
	// standing queries and one-shot queries amortize searches together.
	// A nil Runner gets a private runner with a private cache.
	Runner *serve.Runner

	// Exec is the execution backend refresh top-ups run on: the fresh
	// root trees a refresh simulates are placed by it, in-process for
	// exec.Local (the default) or across a worker fleet for
	// exec.Cluster. Because every backend upholds the determinism
	// invariant — root i draws from substream i regardless of placement —
	// a sharded engine maintains bit-for-bit the answers a single-machine
	// engine would. Remote backends rebuild models by registry name, so
	// streams must be registered through RegisterModel with the name the
	// workers know.
	Exec exec.Executor

	DriftTol         float64 // batch survival tolerance on |Δf0| (default DefaultDriftTol)
	StartBucketWidth float64 // plan-key bucket width on f0 (default DefaultStartBucketWidth)
	TopUpRoots       int     // fresh roots per top-up round (default DefaultTopUpRoots)
	GroupRoots       int     // roots per bootstrap group (default DefaultGroupRoots)
	MaxAgeTicks      int64   // batch age cap in ticks (default DefaultMaxAgeTicks)
	MaxRefreshSteps  int64   // per-refresh fresh-simulation cap (default DefaultMaxRefreshSteps)
	BootstrapReps    int     // bootstrap replicates per evaluation (default DefaultBootstrapReps)

	// RefreshWorkers bounds how many subscriptions of one stream are
	// refreshed concurrently per update (default GOMAXPROCS).
	RefreshWorkers int

	// Metrics, when non-nil, receives per-tick refresh telemetry (tick and
	// refresh durations, subscriptions refreshed and roots topped up per
	// tick, dormant revivals, drift re-searches). Telemetry only: nothing
	// read from it ever feeds maintenance decisions or answers.
	Metrics *telemetry.EngineMetrics
}

func (c Config) withDefaults() Config {
	if c.Runner == nil {
		c.Runner = &serve.Runner{Cache: serve.NewPlanCache(0)}
	}
	if c.Exec == nil {
		c.Exec = exec.Local{}
	}
	if c.DriftTol <= 0 {
		c.DriftTol = DefaultDriftTol
	}
	if c.StartBucketWidth <= 0 {
		c.StartBucketWidth = DefaultStartBucketWidth
	}
	if c.GroupRoots <= 0 {
		c.GroupRoots = DefaultGroupRoots
	}
	if c.TopUpRoots <= 0 {
		c.TopUpRoots = DefaultTopUpRoots
	}
	// Top-up batches are split into equal bootstrap groups; round the
	// batch size up to a multiple of the group size so groups stay equal.
	if rem := c.TopUpRoots % c.GroupRoots; rem != 0 {
		c.TopUpRoots += c.GroupRoots - rem
	}
	if c.MaxAgeTicks <= 0 {
		c.MaxAgeTicks = DefaultMaxAgeTicks
	}
	if c.MaxRefreshSteps <= 0 {
		c.MaxRefreshSteps = DefaultMaxRefreshSteps
	}
	if c.BootstrapReps <= 0 {
		c.BootstrapReps = DefaultBootstrapReps
	}
	if c.RefreshWorkers <= 0 {
		c.RefreshWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// liveState is one named stream: the process whose futures are simulated,
// the current state, and the subscriptions maintained against it. mu
// serializes updates (and subscribe/close) on this stream; distinct
// streams update independently.
type liveState struct {
	name string
	// modelID names the model in a remote worker's registry, for
	// distributed execution backends; it defaults to the stream name.
	modelID string

	mu    sync.Mutex
	proc  stochastic.Process
	state stochastic.State
	tick  int64
	subs  map[uint64]*Subscription
	// lsn is the journal sequence number of the last mutation applied to
	// this stream; snapshots carry it so WAL replay can skip events a
	// snapshot already includes (see persist.go).
	lsn int64
}

// Engine is the subscription registry and maintenance engine: clients
// register standing durability queries against named live states, and
// every state update refreshes the affected answers incrementally. An
// Engine is safe for concurrent use; it runs no background goroutines of
// its own (updates are maintained on the caller's goroutine, fanned out
// over a bounded worker set).
type Engine struct {
	cfg    Config
	runner *serve.Runner

	mu      sync.RWMutex
	streams map[string]*liveState

	// journal, when attached, receives every engine mutation as a
	// JournalEvent before-or-as it lands (see persist.go); nil engines
	// journal nothing and pay nothing.
	jmu     sync.RWMutex
	journal Journal

	nextSub atomic.Uint64

	// lifetime counters, for EngineStats
	ticks       atomic.Int64
	refreshes   atomic.Int64
	freshRoots  atomic.Int64
	freshSteps  atomic.Int64
	searchSteps atomic.Int64
	replans     atomic.Int64
	dropped     atomic.Int64
}

// NewEngine builds an engine from the config.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:     cfg,
		runner:  cfg.Runner,
		streams: make(map[string]*liveState),
	}
}

// Register creates the named live state with the given dynamics and
// initial snapshot (which is cloned). Re-registering an existing name
// replaces its process and state — the recalibration path — and
// invalidates every plan cached for the stream, since plans tuned for
// the old dynamics may be badly shaped for the new ones; existing
// subscriptions survive and replan lazily on the next update.
func (e *Engine) Register(name string, proc stochastic.Process, initial stochastic.State) error {
	return e.RegisterModel(name, name, proc, initial)
}

// RegisterModel is Register with an explicit model identifier: the name
// remote workers of a distributed execution backend rebuild the model
// under. Engines on the local backend never consult it; Register
// defaults it to the stream name.
func (e *Engine) RegisterModel(name, modelID string, proc stochastic.Process, initial stochastic.State) error {
	ls, created, err := e.ensure(name, modelID, proc, initial)
	if err != nil || created {
		return err
	}

	ls.mu.Lock()
	lsn, rerr := e.record(EvRegistered{Name: name, ModelID: modelID, State: initial.Clone()})
	if rerr != nil {
		ls.mu.Unlock()
		return fmt.Errorf("stream: journaling re-registration of %q: %w", name, rerr)
	}
	replaced := ls.proc != proc
	ls.proc = proc
	ls.modelID = modelID
	ls.state = initial.Clone()
	if lsn > ls.lsn {
		ls.lsn = lsn
	}
	for _, sub := range ls.subs {
		sub.forceReplan()
	}
	ls.mu.Unlock()
	if replaced && e.runner.Cache != nil {
		e.runner.Cache.Invalidate(func(k serve.PlanKey) bool { return k.Model == name })
	}
	return nil
}

// Ensure registers the named live state if it does not exist yet, as one
// atomic check-and-create — concurrent first uses of a stream name race
// safely, unlike a caller-side Has-then-Register, whose loser would take
// Register's replace path and needlessly reset the stream. An existing
// stream is left untouched.
func (e *Engine) Ensure(name string, proc stochastic.Process, initial stochastic.State) error {
	_, _, err := e.ensure(name, name, proc, initial)
	return err
}

// ensure validates and atomically creates-or-finds the named stream.
func (e *Engine) ensure(name, modelID string, proc stochastic.Process, initial stochastic.State) (ls *liveState, created bool, err error) {
	if name == "" {
		return nil, false, errors.New("stream: empty stream name")
	}
	if proc == nil {
		return nil, false, errors.New("stream: nil process")
	}
	if initial == nil {
		return nil, false, errors.New("stream: nil initial state")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if ls, ok := e.streams[name]; ok {
		return ls, false, nil
	}
	lsn, err := e.record(EvRegistered{Name: name, ModelID: modelID, State: initial.Clone()})
	if err != nil {
		return nil, false, fmt.Errorf("stream: journaling registration of %q: %w", name, err)
	}
	ls = &liveState{
		name:    name,
		modelID: modelID,
		proc:    proc,
		state:   initial.Clone(),
		subs:    make(map[uint64]*Subscription),
		lsn:     lsn,
	}
	e.streams[name] = ls
	return ls, true, nil
}

// Has reports whether the named stream exists.
func (e *Engine) Has(name string) bool {
	e.mu.RLock()
	_, ok := e.streams[name]
	e.mu.RUnlock()
	return ok
}

// Tick returns the named stream's current tick (0 before any update).
func (e *Engine) Tick(name string) (int64, bool) {
	e.mu.RLock()
	ls, ok := e.streams[name]
	e.mu.RUnlock()
	if !ok {
		return 0, false
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.tick, true
}

func (e *Engine) stream(name string) (*liveState, error) {
	e.mu.RLock()
	ls, ok := e.streams[name]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("stream: unknown stream %q", name)
	}
	return ls, nil
}

// Update publishes a new snapshot of the named live state (cloned) and
// refreshes every subscription on it incrementally, fanning the refreshes
// out over at most RefreshWorkers goroutines. It returns one Refresh per
// subscription, ordered by subscription ID. Updates to the same stream
// serialize; a context cancellation mid-update leaves each subscription
// with its last completed answer.
func (e *Engine) Update(ctx context.Context, name string, st stochastic.State) ([]Refresh, error) {
	if st == nil {
		return nil, errors.New("stream: nil state")
	}
	ls, err := e.stream(name)
	if err != nil {
		return nil, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	// Write-ahead: the update is journaled before it is applied, so every
	// tick whose answers a client could have observed is recoverable.
	lsn, err := e.record(EvUpdated{Name: name, State: st.Clone()})
	if err != nil {
		return nil, fmt.Errorf("stream: journaling update of %q: %w", name, err)
	}
	ls.state = st.Clone()
	ls.tick++
	if lsn > ls.lsn {
		ls.lsn = lsn
	}
	e.ticks.Add(1)
	began := telemetry.Now()
	out := e.refreshLocked(ctx, ls)
	var topUp int64
	for _, r := range out {
		topUp += r.Answer.FreshRoots
	}
	e.cfg.Metrics.ObserveTick(telemetry.Since(began), int64(len(out)), topUp)
	return out, nil
}

// refreshLocked refreshes every subscription of ls against its current
// state; the caller holds ls.mu.
func (e *Engine) refreshLocked(ctx context.Context, ls *liveState) []Refresh {
	subs := make([]*Subscription, 0, len(ls.subs))
	for _, sub := range ls.subs {
		subs = append(subs, sub)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })

	out := make([]Refresh, len(subs))
	workers := e.cfg.RefreshWorkers
	if workers > len(subs) {
		workers = len(subs)
	}
	if workers <= 1 {
		for i, sub := range subs {
			ans, err := sub.refresh(ctx, ls.proc, ls.state, ls.tick)
			out[i] = Refresh{SubID: sub.id, Answer: ans, Err: err}
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ans, err := subs[i].refresh(ctx, ls.proc, ls.state, ls.tick)
				out[i] = Refresh{SubID: subs[i].id, Answer: ans, Err: err}
			}
		}()
	}
	for i := range subs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Subscribe registers a standing query against spec.Stream and computes
// its initial answer from the stream's current state (a cold start: the
// first refresh pays the plan search, unless the shared cache already
// holds a plan for the shape, and fills the root pool to the quality
// target). Later updates maintain the answer incrementally.
func (e *Engine) Subscribe(ctx context.Context, spec SubSpec) (*Subscription, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	return e.subscribe(ctx, spec, 0, 0, false)
}

// SubscribeAssigned is Subscribe with a caller-assigned ID — the sharded
// path, where a wrapper owns one ID sequence across several engines so
// that consistent-hash placement and bit-for-bit parity with a single
// engine both hold (the ID seeds the subscription's bootstrap substream).
// The registration is journaled like any live subscribe; the id must be
// unique across every engine sharing the sequence.
func (e *Engine) SubscribeAssigned(ctx context.Context, spec SubSpec, id uint64) (*Subscription, error) {
	if id == 0 {
		return nil, errors.New("stream: zero subscription id")
	}
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	// Keep the internal sequence at or ahead of assigned IDs so a later
	// plain Subscribe on this engine cannot collide.
	for {
		cur := e.nextSub.Load()
		if cur >= id || e.nextSub.CompareAndSwap(cur, id) {
			break
		}
	}
	return e.subscribe(ctx, spec, id, 0, false)
}

// MaxSubID returns the highest subscription ID this engine has assigned
// or adopted (via SubscribeAssigned, Restore or replay). A sharded
// wrapper resumes its shared sequence from the max over its shards.
func (e *Engine) MaxSubID() uint64 { return e.nextSub.Load() }

// subscribe registers a defaulted spec. id == 0 is the live path: a fresh
// ID is assigned. replay marks the Apply path, which reuses the logged ID
// and stamps the event's lsn instead of journaling again; live paths
// journal the registration once the initial refresh succeeds.
func (e *Engine) subscribe(ctx context.Context, spec SubSpec, id uint64, lsn int64, replay bool) (*Subscription, error) {
	ls, err := e.stream(spec.Stream)
	if err != nil {
		return nil, err
	}
	if id == 0 {
		id = e.nextSub.Add(1)
	}
	sub := &Subscription{
		id:     id,
		engine: e,
		ls:     ls,
		spec:   spec,
		notify: make(chan struct{}),
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if _, err := sub.refresh(ctx, ls.proc, ls.state, ls.tick); err != nil {
		return nil, err
	}
	if !replay {
		// Journaled only on success: a crash mid-subscribe loses the
		// half-built registration (the client retries) rather than
		// recovering a subscription the client was never told about.
		if lsn, err = e.record(EvSubscribed{Spec: specState(spec), ID: id}); err != nil {
			return nil, fmt.Errorf("stream: journaling subscription: %w", err)
		}
	}
	ls.subs[sub.id] = sub
	if lsn > ls.lsn {
		ls.lsn = lsn
	}
	return sub, nil
}

// EngineStats is a point-in-time snapshot of the engine.
type EngineStats struct {
	Streams       int
	Subscriptions int

	Ticks        int64 // state updates processed
	Refreshes    int64 // subscription refreshes performed
	FreshRoots   int64 // root trees simulated by refreshes
	FreshSteps   int64 // simulator invocations spent on fresh roots
	SearchSteps  int64 // simulator invocations spent on plan searches paid by refreshes
	Replans      int64 // refreshes that crossed a drift bucket and re-resolved their plan
	DroppedRoots int64 // root trees discarded by drift, age or replanning
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Ticks:        e.ticks.Load(),
		Refreshes:    e.refreshes.Load(),
		FreshRoots:   e.freshRoots.Load(),
		FreshSteps:   e.freshSteps.Load(),
		SearchSteps:  e.searchSteps.Load(),
		Replans:      e.replans.Load(),
		DroppedRoots: e.dropped.Load(),
	}
	e.mu.RLock()
	st.Streams = len(e.streams)
	streams := make([]*liveState, 0, len(e.streams))
	//durlint:ignore maporder the slice only feeds an order-insensitive sum of subscription counts
	for _, ls := range e.streams {
		streams = append(streams, ls)
	}
	e.mu.RUnlock()
	for _, ls := range streams {
		ls.mu.Lock()
		st.Subscriptions += len(ls.subs)
		ls.mu.Unlock()
	}
	return st
}
