package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 5)
	want := []float64{1, 4, 16, 64, 256}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestHistogramBucketing pins the "le" semantics: a value equal to a
// bound lands in that bound's bucket, values above every bound land in
// the overflow.
func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (..1], (1..10], (10..100], overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count: got %d, want 8", s.Count)
	}
}

// TestQuantileExact checks quantiles against an exactly known
// distribution: 100 observations spread uniformly in (0, 100], one per
// unit, over unit-aligned buckets — every quantile is computable by
// hand.
func TestQuantileExact(t *testing.T) {
	bounds := make([]float64, 10) // 10, 20, ... 100
	for i := range bounds {
		bounds[i] = float64(10 * (i + 1))
	}
	h := NewHistogram(bounds)
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	// rank = q*100; within each 10-wide bucket of 10 observations the
	// interpolation is linear, so pXX = XX exactly.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50},
		{0.95, 95},
		{0.99, 99},
		{1.00, 100},
		{0.10, 10},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := s.Quantile(0.5); got != 50 {
		t.Errorf("repeated quantile changed: %v", got)
	}
	if s.Sum != 5050 {
		t.Errorf("sum: got %v, want 5050", s.Sum)
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile: got %v, want NaN", got)
	}
	h.Observe(50) // overflow only
	if got := h.Snapshot().Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile: got %v, want last bound 2", got)
	}
}

// TestMergeMatchesCombined verifies the g-MLSS-style merge law: two
// histograms merged equal one histogram fed both observation sets.
func TestMergeMatchesCombined(t *testing.T) {
	bounds := ExpBuckets(1, 2, 8)
	a, b, both := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
	for v := 1; v <= 60; v++ {
		x := float64(v) * 1.7
		if v%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
		both.Observe(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), both.Snapshot()
	for i := range sa.Counts {
		if sa.Counts[i] != sb.Counts[i] {
			t.Errorf("bucket %d: merged %d, combined %d", i, sa.Counts[i], sb.Counts[i])
		}
	}
	if sa.Count != sb.Count || math.Abs(sa.Sum-sb.Sum) > 1e-9 {
		t.Errorf("merged count/sum %d/%v, combined %d/%v", sa.Count, sa.Sum, sb.Count, sb.Sum)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if ga, gb := sa.Quantile(q), sb.Quantile(q); ga != gb {
			t.Errorf("q=%v: merged %v, combined %v", q, ga, gb)
		}
	}
}

func TestMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
	c := NewHistogram([]float64{1})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of different bucket counts succeeded")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this is the lock-freedom proof, and the final count
// must be exact regardless.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-4, 2, 10))
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-5)
				if i%100 == 0 {
					h.Snapshot().Quantile(0.99) // concurrent scrapes
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*per {
		t.Fatalf("count: got %d, want %d", got, goroutines*per)
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if err := h.Merge(NewHistogram([]float64{1})); err != nil {
		t.Fatal(err)
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot count %d", s.Count)
	}
}
