package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// EngineMetrics is the per-tick refresh telemetry of the standing-query
// engine (internal/stream): how many subscriptions a tick refreshed,
// how many fresh roots it topped up, how long ticks and individual
// refreshes took, and the maintenance event invisible in lifetime
// counters — dormant batches reviving when the state drifts back to
// them. A nil *EngineMetrics ignores every call.
type EngineMetrics struct {
	TickSeconds       *Histogram // wall time per engine update
	RefreshSeconds    *Histogram // wall time per subscription refresh
	RefreshedPerTick  *Histogram // subscriptions refreshed per tick
	TopUpRootsPerTick *Histogram // fresh roots simulated per tick

	// Trace, when non-nil, additionally books each refresh as a
	// StageRefresh span, so the lifecycle stage taxonomy covers
	// standing-query maintenance alongside the one-shot stages.
	Trace *Tracer

	revivals atomic.Int64
}

// NewEngineMetrics builds the bundle with default buckets.
func NewEngineMetrics() *EngineMetrics {
	return &EngineMetrics{
		TickSeconds:       NewHistogram(DurationBuckets),
		RefreshSeconds:    NewHistogram(DurationBuckets),
		RefreshedPerTick:  NewHistogram(SizeBuckets),
		TopUpRootsPerTick: NewHistogram(SizeBuckets),
	}
}

// ObserveTick records one engine update: its wall time, the
// subscriptions it refreshed and the fresh roots they topped up.
func (m *EngineMetrics) ObserveTick(d time.Duration, refreshed, topUpRoots int64) {
	if m == nil {
		return
	}
	m.TickSeconds.ObserveDuration(d)
	m.RefreshedPerTick.Observe(float64(refreshed))
	m.TopUpRootsPerTick.Observe(float64(topUpRoots))
}

// ObserveRefresh records one subscription refresh: its wall time, the
// fresh simulator steps its top-up paid, and how many dormant batches
// the new state revived. The refresh span carries only the fresh steps:
// refresh plan resolution goes through the shared runner, which already
// attributes search steps to plan-search spans, so every step lands on
// exactly one non-envelope stage.
func (m *EngineMetrics) ObserveRefresh(d time.Duration, freshSteps, revived int64) {
	if m == nil {
		return
	}
	m.RefreshSeconds.ObserveDuration(d)
	m.revivals.Add(revived)
	m.Trace.Observe(StageRefresh, d, freshSteps)
}

// Revivals reports dormant batches revived by the state drifting back.
func (m *EngineMetrics) Revivals() int64 {
	if m == nil {
		return 0
	}
	return m.revivals.Load()
}

// WorkerStats is the per-worker shard attribution of a cluster backend:
// every chunk call to one worker address folds in here, so a fleet's
// metrics show which machine is slow (coordinator-observed round-trip
// vs the worker's own measured simulation time) and which carries the
// steps. A nil *WorkerStats ignores every call.
type WorkerStats struct {
	calls  atomic.Int64
	errs   atomic.Int64
	steps  atomic.Int64
	roots  atomic.Int64
	nanos  atomic.Int64 // worker-side simulation time, shipped back on the reply
	Chunk  *Histogram   // coordinator-observed chunk round-trip seconds
	Remote *Histogram   // worker-reported simulation seconds
}

// Record folds one chunk call into the stats. workerNanos, steps and
// roots come from the worker's reply, so they are 0 when the call
// failed before one: an errored (or later retried) attempt books the
// call, the error and its round-trip, but no work the worker never
// performed.
func (w *WorkerStats) Record(d time.Duration, workerNanos, steps, roots int64, err error) {
	if w == nil {
		return
	}
	w.calls.Add(1)
	if err != nil {
		w.errs.Add(1)
	}
	w.steps.Add(steps)
	w.roots.Add(roots)
	w.nanos.Add(workerNanos)
	w.Chunk.ObserveDuration(d)
	if workerNanos > 0 {
		w.Remote.ObserveDuration(time.Duration(workerNanos))
	}
}

// Calls reports chunk calls dispatched to the worker.
func (w *WorkerStats) Calls() int64 {
	if w == nil {
		return 0
	}
	return w.calls.Load()
}

// Errors reports chunk calls that failed on the worker.
func (w *WorkerStats) Errors() int64 {
	if w == nil {
		return 0
	}
	return w.errs.Load()
}

// Steps reports simulator invocations the worker performed.
func (w *WorkerStats) Steps() int64 {
	if w == nil {
		return 0
	}
	return w.steps.Load()
}

// Roots reports root paths the worker simulated.
func (w *WorkerStats) Roots() int64 {
	if w == nil {
		return 0
	}
	return w.roots.Load()
}

// WorkerNanos reports the worker's own cumulative measured simulation
// time in nanoseconds.
func (w *WorkerStats) WorkerNanos() int64 {
	if w == nil {
		return 0
	}
	return w.nanos.Load()
}

// WorkerMetrics tracks WorkerStats per worker address, creating entries
// lazily as addresses are first called. The onNew hook fires once per
// new address under no lock ordering guarantees beyond "before the
// first Record" — the metrics registry uses it to surface the worker's
// series. A nil *WorkerMetrics ignores every call.
type WorkerMetrics struct {
	mu      sync.Mutex
	workers map[string]*WorkerStats
	onNew   func(addr string, ws *WorkerStats)
}

// NewWorkerMetrics builds the per-worker table; onNew may be nil.
func NewWorkerMetrics(onNew func(addr string, ws *WorkerStats)) *WorkerMetrics {
	return &WorkerMetrics{workers: make(map[string]*WorkerStats), onNew: onNew}
}

// Worker returns (creating if needed) the stats for a worker address.
func (m *WorkerMetrics) Worker(addr string) *WorkerStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	ws, ok := m.workers[addr]
	if !ok {
		ws = &WorkerStats{
			Chunk:  NewHistogram(DurationBuckets),
			Remote: NewHistogram(DurationBuckets),
		}
		m.workers[addr] = ws
		if m.onNew != nil {
			m.onNew(addr, ws)
		}
	}
	m.mu.Unlock()
	return ws
}

// ReplicaMetrics books WAL-follower replication telemetry: promotions
// taken, lease expiries observed and ack rounds received from followers.
// Like every bundle here it lives outside the deterministic core — the
// follower's apply path never reads it — and a nil *ReplicaMetrics
// ignores every call, so replication code is instrumented without
// caring whether a registry is attached.
type ReplicaMetrics struct {
	promotions    atomic.Int64
	leaseExpiries atomic.Int64
	ackRounds     atomic.Int64
}

// IncPromotion books one follower promotion (manual or lease-driven).
func (m *ReplicaMetrics) IncPromotion() {
	if m == nil {
		return
	}
	m.promotions.Add(1)
}

// Promotions reports promotions taken.
func (m *ReplicaMetrics) Promotions() int64 {
	if m == nil {
		return 0
	}
	return m.promotions.Load()
}

// IncLeaseExpiry books one primary-lease expiry.
func (m *ReplicaMetrics) IncLeaseExpiry() {
	if m == nil {
		return
	}
	m.leaseExpiries.Add(1)
}

// LeaseExpiries reports primary-lease expiries observed.
func (m *ReplicaMetrics) LeaseExpiries() int64 {
	if m == nil {
		return 0
	}
	return m.leaseExpiries.Load()
}

// IncAckRound books one applied-LSN ack received from a follower.
func (m *ReplicaMetrics) IncAckRound() {
	if m == nil {
		return
	}
	m.ackRounds.Add(1)
}

// AckRounds reports follower ack rounds received.
func (m *ReplicaMetrics) AckRounds() int64 {
	if m == nil {
		return 0
	}
	return m.ackRounds.Load()
}
