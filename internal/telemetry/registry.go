package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Call sites pass labels in a fixed
// order; the registry sorts them canonically for exposition, so the
// rendered series identity is independent of call-site order.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing metric backed by one atomic.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// series is one label combination of a family.
type series struct {
	labels    []Label // sorted by name
	counter   *Counter
	counterFn func() int64
	gaugeFn   func() float64
	hist      *Histogram
}

// family is one metric name: a help string, a type, and its series.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is get-or-create keyed on
// (name, labels), so hot paths may re-register idempotently and
// per-worker series can appear lazily as workers are first used.
//
// Convention the golden tests lean on: families measuring wall time
// carry "_seconds" in their name; every other family's values are pure
// functions of the request history, so two identically driven servers
// render them byte-identically.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// register finds or creates the series for (name, labels), enforcing
// one type and help string per family, then runs init on it — still
// under the registry lock, so series-field writes are ordered against
// the snapshot WritePrometheus takes. Registration happens on serving
// hot paths (per-worker series appear on a worker's first call), so
// nothing outside this lock may touch the family maps or series fields.
func (r *Registry) register(name, help, typ string, labels []Label, init func(*series)) {
	labels = sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		f.series[key] = s
	}
	init(s)
}

// Counter returns the counter for (name, labels), creating it if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	var c *Counter
	r.register(name, help, "counter", labels, func(s *series) {
		if s.counter == nil && s.counterFn == nil {
			s.counter = &Counter{}
		}
		c = s.counter
	})
	return c
}

// CounterFunc exposes an existing monotone counter (a serving-layer
// atomic, typically) as a counter series without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, "counter", labels, func(s *series) {
		s.counterFn = fn
		s.counter = nil
	})
}

// GaugeFunc exposes a point-in-time reading as a gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func(s *series) { s.gaugeFn = fn })
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bounds if needed.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	var h *Histogram
	r.register(name, help, "histogram", labels, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
		h = s.hist
	})
	return h
}

// RegisterHistogram adopts an existing histogram as a series, so
// subsystems that own their histograms (the tracer, the stream engine
// metrics) surface them without copying.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, "histogram", labels, func(s *series) { s.hist = h })
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels renders a label set, appending extra (used for "le")
// last.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and series sorted by label set, so two
// registries holding identical values render byte-identical documents.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot everything structural under the lock: register() inserts
	// into the family maps from serving hot paths (a cluster worker's
	// series appear on its first call), so iterating the live maps while
	// rendering would be a fatal concurrent map iteration. Each series
	// struct is copied too, since re-registration may swap its backing
	// fn. Values are then read outside the lock — counters and histogram
	// buckets are atomics, and registered fns only read subsystem state,
	// never the registry.
	type famView struct {
		name, help, typ string
		series          []series
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famView, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fv := famView{name: f.name, help: f.help, typ: f.typ, series: make([]series, 0, len(keys))}
		for _, k := range keys {
			fv.series = append(fv.series, *f.series[k])
		}
		fams = append(fams, fv)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case "counter":
				v := s.counter.Value()
				if s.counterFn != nil {
					v = s.counterFn()
				}
				fmt.Fprintf(bw, "%s%s %d\n", f.name, renderLabels(s.labels), v)
			case "gauge":
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(v))
			case "histogram":
				snap := s.hist.Snapshot()
				cum := uint64(0)
				for i, b := range snap.Bounds {
					cum += snap.Counts[i]
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, Label{"le", formatFloat(b)}), cum)
				}
				if len(snap.Counts) > 0 {
					cum += snap.Counts[len(snap.Counts)-1]
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, Label{"le", "+Inf"}), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatFloat(snap.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, renderLabels(s.labels), cum)
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry as a GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The write failed mid-body; nothing useful left to send.
			return
		}
	})
}
