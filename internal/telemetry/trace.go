package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span stage names covering the query lifecycle: a one-shot query is
// admission → plan-cache|plan-search → exec → merge → answer, a batch is
// admission → plan-cache|plan-search → exec → merge → answer under the
// batch envelope, and a standing query's maintenance is refresh (which
// itself pays plan-search and exec through the shared runner). The
// query/batch stages time the whole lifecycle end to end, so their
// histograms are the serving latency distributions.
const (
	StageAdmission  = "admission"   // enqueue to pool-worker pickup
	StagePlanCache  = "plan-cache"  // plan resolved from the shared cache
	StagePlanSearch = "plan-search" // plan resolved by running a level search
	StageExec       = "exec"        // root-path simulation through the backend
	StageMerge      = "merge"       // counter merge + estimate + bootstrap
	StageAnswer     = "answer"      // response assembly from the result
	StageQuery      = "query"       // one-shot query end to end
	StageBatch      = "batch"       // shared batch run end to end
	StageRefresh    = "refresh"     // one standing-query refresh
)

// StageAgg aggregates every span of one stage: how many spans ended, the
// simulator steps they were attributed, and the wall-time distribution.
// Step attribution is exact by construction: each serving call site
// books onto its span precisely the steps it books into the serving
// counters, so summing a stage's steps reproduces the server totals
// (plan-search == searchSteps, exec == sampleSteps) at any fixed seed.
type StageAgg struct {
	spans   atomic.Int64
	steps   atomic.Int64
	seconds *Histogram
}

// Spans reports how many spans of the stage have ended.
func (a *StageAgg) Spans() int64 {
	if a == nil {
		return 0
	}
	return a.spans.Load()
}

// Steps reports the simulator invocations attributed to the stage.
func (a *StageAgg) Steps() int64 {
	if a == nil {
		return 0
	}
	return a.steps.Load()
}

// Seconds snapshots the stage's wall-time distribution.
func (a *StageAgg) Seconds() HistogramSnapshot {
	if a == nil {
		return HistogramSnapshot{}
	}
	return a.seconds.Snapshot()
}

// Tracer aggregates lightweight trace spans by lifecycle stage. It is
// deliberately not a per-request trace store: serving millions of
// queries must not allocate per-span history, so a span folds into its
// stage's histogram and counters at End and is gone. A nil *Tracer (and
// a nil *Span) ignores every call, so instrumented code paths need no
// configuration checks.
type Tracer struct {
	mu      sync.Mutex
	stages  map[string]*StageAgg
	newHist func(stage string) *Histogram
}

// NewTracer builds a tracer. newHist, when non-nil, supplies the
// duration histogram for each stage as it first appears — the hook a
// metrics registry uses to own the histograms (so stages surface as
// labeled series); nil gets private histograms with DurationBuckets.
func NewTracer(newHist func(stage string) *Histogram) *Tracer {
	return &Tracer{stages: make(map[string]*StageAgg), newHist: newHist}
}

// Stage returns (creating if needed) the aggregate for a stage name.
func (t *Tracer) Stage(name string) *StageAgg {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.stages[name]
	if !ok {
		var h *Histogram
		if t.newHist != nil {
			h = t.newHist(name)
		}
		if h == nil {
			h = NewHistogram(DurationBuckets)
		}
		a = &StageAgg{seconds: h}
		t.stages[name] = a
	}
	return a
}

// StageNames returns the sorted names of every stage seen so far.
func (t *Tracer) StageNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.stages))
	for name := range t.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Steps is shorthand for Stage(name).Steps() without creating the stage.
func (t *Tracer) Steps(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	a := t.stages[name]
	t.mu.Unlock()
	return a.Steps()
}

// Observe folds one already-completed operation into a stage — the
// span-free form for call sites that pick the stage only after the
// operation finished (a plan resolution is a plan-cache hit or a
// plan-search depending on its outcome).
func (t *Tracer) Observe(stage string, d time.Duration, steps int64) {
	if t == nil {
		return
	}
	a := t.Stage(stage)
	a.spans.Add(1)
	a.steps.Add(steps)
	a.seconds.ObserveDuration(d)
}

// Span is one in-flight timed operation. Spans are cheap (one wall-clock
// read at start, one at End) and must not escape to persisted state —
// they exist precisely so wall time has somewhere to live *outside* the
// deterministic results.
type Span struct {
	agg   *StageAgg
	start time.Time
	steps int64
}

// Start opens a span on the named stage.
func (t *Tracer) Start(stage string) *Span {
	if t == nil {
		return nil
	}
	return &Span{agg: t.Stage(stage), start: Now()}
}

// AddSteps attributes simulator invocations to the span.
func (s *Span) AddSteps(n int64) {
	if s == nil {
		return
	}
	s.steps += n
}

// End folds the span into its stage aggregate. End must be called at
// most once; a span that is never ended is simply not recorded (the
// admission span of a shed query, for example).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.agg.spans.Add(1)
	s.agg.steps.Add(s.steps)
	s.agg.seconds.ObserveDuration(Since(s.start))
}
