package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DurationBuckets is the default upper-bound ladder for latency
// histograms, in seconds: 100µs doubling up to ~52s. Durations above the
// last bound land in the implicit +Inf overflow bucket.
var DurationBuckets = ExpBuckets(1e-4, 2, 20)

// SizeBuckets is the default ladder for size/step-count histograms:
// powers of four from 1 to ~4.2M.
var SizeBuckets = ExpBuckets(1, 4, 12)

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a lock-free fixed-bucket histogram: one atomic counter
// per bucket plus an atomic sum, so the query hot path pays two atomic
// adds per observation and scrapes never block observers. Like the
// g-MLSS level counters, histograms with equal bounds are mergeable by
// plain addition, so per-shard histograms fold into fleet totals.
//
// Bucket i counts observations v with bounds[i-1] < v <= bounds[i]
// (Prometheus "le" semantics); one extra overflow bucket catches
// v > bounds[len-1]. A nil *Histogram ignores observations, so optional
// telemetry needs no call-site nil checks.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Merge folds o's counts into h. Bounds must match exactly — merging is
// only meaningful between histograms of one family, the same contract
// the g-MLSS counter merge has on plan shape.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			return fmt.Errorf("telemetry: merging histograms with different bound %d: %v vs %v", i, b, o.bounds[i])
		}
	}
	var n uint64
	for i := range o.counts {
		c := o.counts[i].Load()
		h.counts[i].Add(c)
		n += c
	}
	h.count.Add(n)
	add := math.Float64frombits(o.sumBits.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, the unit
// quantiles are computed over (so p50 and p99 of one report come from
// one consistent view).
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the overflow bucket is implicit
	Counts []uint64  // per-bucket counts, len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Snapshot copies the current counts. Concurrent observers may land
// between bucket reads; each bucket is individually consistent, which is
// all quantile estimation needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket the rank falls in — the same estimate
// Prometheus's histogram_quantile computes. Ranks landing in the
// overflow bucket report the last finite bound (the best lower bound
// available); an empty histogram reports NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
