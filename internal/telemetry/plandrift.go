package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// PlanDriftSample is one plan's drift reading as the crossing-statistics
// ledger delivers it after a booking. The fields restate the ledger's
// snapshot primitives so this file stays free of non-stdlib imports and
// the ledger stays free of telemetry (it sits below core, which imports
// this package).
type PlanDriftSample struct {
	// Key is the canonical plan-key label; each distinct key gets its own
	// metric series.
	Key string
	// MaxDrift is the largest per-level |observed − assumed| conditional
	// crossing probability; Observed reports whether any level has been
	// attempted at all (MaxDrift means nothing before then).
	MaxDrift float64
	Observed bool
	// Runs counts bookings under the plan's current shape — the plan's
	// age in runs. A re-search resets it along with the counters.
	Runs int64
}

// planDriftState backs one plan's gauge series. Gauge reads race with
// bookings, so values are atomics; drift is float64 bits.
type planDriftState struct {
	drift atomic.Uint64
	runs  atomic.Int64
}

// PlanDriftMetrics turns ledger bookings into Prometheus series: a
// per-plan drift gauge, a per-plan age gauge, and a counter of bookings
// whose drift exceeded the configured threshold. Report-only by design —
// nothing here feeds back into planning; the threshold exists so
// operators can alert on plans whose search assumptions no longer match
// live traffic and decide about invalidation themselves.
type PlanDriftMetrics struct {
	reg       *Registry
	threshold float64
	exceeded  *Counter

	mu    sync.Mutex
	plans map[string]*planDriftState
}

// NewPlanDriftMetrics wires the drift series into reg. threshold <= 0
// disables the exceeded counter's comparisons (the gauges still export).
func NewPlanDriftMetrics(reg *Registry, threshold float64) *PlanDriftMetrics {
	m := &PlanDriftMetrics{
		reg:       reg,
		threshold: threshold,
		plans:     make(map[string]*planDriftState),
	}
	m.exceeded = reg.Counter("durserve_plan_drift_exceeded_total",
		"Ledger bookings whose max per-level crossing-probability drift exceeded the configured threshold.")
	return m
}

// Observe records one booking's drift reading. The first sample for a
// key registers its gauge series; later samples only store atomics, so
// the hook stays cheap on the booking goroutine.
func (m *PlanDriftMetrics) Observe(s PlanDriftSample) {
	if m == nil {
		return
	}
	m.mu.Lock()
	st, ok := m.plans[s.Key]
	if !ok {
		st = &planDriftState{}
		m.plans[s.Key] = st
		label := Label{Name: "plan", Value: s.Key}
		m.reg.GaugeFunc("durserve_plan_drift",
			"Max per-level |observed - assumed| conditional crossing probability of the plan (0 until any level is attempted).",
			func() float64 { return math.Float64frombits(st.drift.Load()) }, label)
		m.reg.GaugeFunc("durserve_plan_age_runs",
			"Runs booked under the plan's current shape (resets when the plan is re-searched).",
			func() float64 { return float64(st.runs.Load()) }, label)
	}
	m.mu.Unlock()

	drift := s.MaxDrift
	if !s.Observed {
		drift = 0
	}
	st.drift.Store(math.Float64bits(drift))
	st.runs.Store(s.Runs)
	if m.threshold > 0 && s.Observed && s.MaxDrift > m.threshold {
		m.exceeded.Inc()
	}
}
