package telemetry

import (
	"errors"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_queries_total", "Queries served.").Add(3)
	r.CounterFunc("test_steps_total", "Steps.", func() int64 { return 42 })
	r.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1}, Label{"stage", "exec"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_queries_total Queries served.\n# TYPE test_queries_total counter\ntest_queries_total 3\n",
		"test_steps_total 42\n",
		"# TYPE test_depth gauge\ntest_depth 1.5\n",
		`test_latency_seconds_bucket{stage="exec",le="0.1"} 1`,
		`test_latency_seconds_bucket{stage="exec",le="1"} 2`,
		`test_latency_seconds_bucket{stage="exec",le="+Inf"} 3`,
		`test_latency_seconds_sum{stage="exec"} 7.55`,
		`test_latency_seconds_count{stage="exec"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryDeterministicOrder pins the byte-identity property the
// golden /metrics test depends on: registration order must not leak
// into the rendered document.
func TestRegistryDeterministicOrder(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "c").Inc()
		}
		r.Histogram("hist_seconds", "h", []float64{1}, Label{"worker", "b"}).Observe(0.5)
		r.Histogram("hist_seconds", "h", []float64{1}, Label{"worker", "a"}).Observe(0.5)
		return render(t, r)
	}
	a := build([]string{"zz_total", "aa_total", "mm_total"})
	b := build([]string{"mm_total", "zz_total", "aa_total"})
	if a != b {
		t.Fatalf("registration order leaked into exposition:\n%s\nvs\n%s", a, b)
	}
	if strings.Index(a, "aa_total") > strings.Index(a, "zz_total") {
		t.Fatalf("families not sorted:\n%s", a)
	}
	if strings.Index(a, `worker="a"`) > strings.Index(a, `worker="b"`) {
		t.Fatalf("series not sorted by labels:\n%s", a)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same_total", "c", Label{"k", "v"})
	c2 := r.Counter("same_total", "c", Label{"k", "v"})
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	h1 := r.Histogram("same_seconds", "h", []float64{1})
	h2 := r.Histogram("same_seconds", "h", []float64{1})
	if h1 != h2 {
		t.Fatal("same (name, labels) returned distinct histograms")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "c", Label{"v", `a"b\c` + "\n"}).Inc()
	out := render(t, r)
	if !strings.Contains(out, `esc_total{v="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestTracerStages(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start(StageExec)
	sp.AddSteps(100)
	sp.AddSteps(23)
	sp.End()
	tr.Start(StageExec).End()

	st := tr.Stage(StageExec)
	if st.Spans() != 2 || st.Steps() != 123 {
		t.Fatalf("spans %d steps %d, want 2/123", st.Spans(), st.Steps())
	}
	if got := st.Seconds().Count; got != 2 {
		t.Fatalf("histogram count %d, want 2", got)
	}
	if names := tr.StageNames(); len(names) != 1 || names[0] != StageExec {
		t.Fatalf("stage names %v", names)
	}
	if tr.Steps("absent") != 0 {
		t.Fatal("absent stage reported steps")
	}
}

// TestNilTracerSafe: every instrumented call site runs with telemetry
// disabled too, so nil tracers, spans and metric bundles must be no-ops.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.AddSteps(1)
	sp.End()
	if tr.Stage("x") != nil || tr.Steps("x") != 0 || tr.StageNames() != nil {
		t.Fatal("nil tracer not inert")
	}
	var em *EngineMetrics
	em.ObserveTick(time.Second, 1, 1)
	em.ObserveRefresh(time.Second, 1, 1)
	if em.Revivals() != 0 {
		t.Fatal("nil engine metrics not inert")
	}
	var wm *WorkerMetrics
	ws := wm.Worker("addr")
	ws.Record(time.Second, 1, 1, 1, nil)
	if ws.Calls() != 0 {
		t.Fatal("nil worker stats not inert")
	}
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
}

// TestRegistryScrapeConcurrentWithLazyRegistration pins the crash the
// serving path can otherwise hit: per-worker series register lazily on
// a worker's first call, so a scrape rendering the family maps while
// registration inserts into them must not race (it was a fatal
// concurrent map iteration before WritePrometheus snapshotted under
// the lock). Run under -race.
func TestRegistryScrapeConcurrentWithLazyRegistration(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		l := Label{"worker", strconv.Itoa(i)}
		r.CounterFunc("lazy_calls_total", "c", func() int64 { return 1 }, l)
		r.Counter("lazy_roots_total", "c", l).Inc()
		r.GaugeFunc("lazy_depth", "g", func() float64 { return 0 }, l)
		r.Histogram("lazy_chunk_seconds", "h", []float64{1}, l).Observe(0.5)
	}
	close(stop)
	wg.Wait()
}

// TestEngineMetricsRefreshSpans: a refresh books one StageRefresh span
// carrying its fresh top-up steps on the wired tracer.
func TestEngineMetricsRefreshSpans(t *testing.T) {
	tr := NewTracer(nil)
	em := NewEngineMetrics()
	em.Trace = tr
	em.ObserveRefresh(time.Second, 40, 1)
	em.ObserveRefresh(time.Second, 2, 0)
	st := tr.Stage(StageRefresh)
	if st.Spans() != 2 || st.Steps() != 42 {
		t.Fatalf("refresh spans %d steps %d, want 2/42", st.Spans(), st.Steps())
	}
	if em.Revivals() != 1 {
		t.Fatalf("revivals %d, want 1", em.Revivals())
	}
	if got := st.Seconds().Count; got != 2 {
		t.Fatalf("refresh histogram count %d, want 2", got)
	}
}

func TestWorkerMetrics(t *testing.T) {
	var created []string
	wm := NewWorkerMetrics(func(addr string, ws *WorkerStats) { created = append(created, addr) })
	a := wm.Worker("w1")
	a.Record(10*time.Millisecond, int64(5*time.Millisecond), 1000, 64, nil)
	a.Record(20*time.Millisecond, 0, 0, 0, errors.New("dead worker"))
	if wm.Worker("w1") != a {
		t.Fatal("same address returned distinct stats")
	}
	wm.Worker("w2")
	if len(created) != 2 || created[0] != "w1" || created[1] != "w2" {
		t.Fatalf("onNew calls %v", created)
	}
	if a.Calls() != 2 || a.Errors() != 1 || a.Steps() != 1000 || a.Roots() != 64 {
		t.Fatalf("stats calls=%d errs=%d steps=%d roots=%d", a.Calls(), a.Errors(), a.Steps(), a.Roots())
	}
	if a.WorkerNanos() != int64(5*time.Millisecond) {
		t.Fatalf("worker nanos %d", a.WorkerNanos())
	}
	if got := a.Remote.Snapshot().Count; got != 1 {
		t.Fatalf("remote histogram count %d, want 1 (failed call has no worker time)", got)
	}
}
