// Package telemetry is the observability subsystem: latency/size
// histograms, query-lifecycle trace spans, and a Prometheus-text-format
// registry — all stdlib-only and designed to live structurally outside
// the deterministic core.
//
// The design constraint everything here follows: sampled values, plans,
// counters and checkpoints must remain pure functions of (query, seed).
// Telemetry therefore only ever *observes* the serving layers; nothing
// in this package is reachable from persisted state, and no deterministic
// computation reads a histogram or span back. The one deliberate
// exception to "deterministic packages never touch the wall clock" is
// the Clock seam below: Now and Since are the sanctioned sink for
// wall-clock reads, and durlint's detsource pass recognizes calls routed
// through this package while still flagging raw time.Now in
// internal/{core,exec,opt,stream,rng}. That turns "every timing site
// needs a suppression comment" into "every timing site goes through one
// auditable seam".
//
// Histograms are lock-free fixed-bucket counters (atomic adds, mergeable
// across shards exactly like g-MLSS counters fold in root order), so
// observing on the query hot path costs two atomic adds. Spans aggregate
// per lifecycle stage — admission wait, plan-cache lookup, plan search,
// exec fan-out, merge, answer assembly, stream refresh — and carry step
// counts so per-stage attribution sums exactly to the serving layer's
// sampleSteps/searchSteps totals.
package telemetry

import "time"

// Clock is the wall-clock seam. The package-level Now/Since calls are
// the ones deterministic packages route through; Clock exists so tests
// can substitute a fake without touching the global.
type Clock struct{}

// Now reads the wall clock. This is the single sanctioned wall-clock
// read for deterministic packages: route timing telemetry through here
// (durlint's detsource pass whitelists it) instead of calling time.Now
// directly, so the invariant "no wall time feeds sampled values" stays
// auditable at one seam.
func Now() time.Time { return time.Now() }

// Since reports the wall time elapsed since t; the Since half of the
// clock seam.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Now on a Clock mirrors the package function.
func (Clock) Now() time.Time { return time.Now() }

// Since on a Clock mirrors the package function.
func (Clock) Since(t time.Time) time.Duration { return time.Since(t) }
