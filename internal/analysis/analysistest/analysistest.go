// Package analysistest runs an analyzer over testdata fixture packages
// and checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework of internal/analysis.
//
// A fixture line expecting findings carries a comment of the form
//
//	code() // want "regexp" "another regexp"
//
// Each quoted pattern must match exactly one diagnostic reported on that
// line, and every diagnostic must be claimed by a pattern; anything
// unmatched in either direction fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"durability/internal/analysis"
)

var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)

// expectation is one `want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each fixture package under srcRoot (a testdata/src
// directory), applies the analyzer, and reports mismatches between its
// diagnostics and the fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, srcRoot, a, path)
		})
	}
}

func runOne(t *testing.T, srcRoot string, a *analysis.Analyzer, path string) {
	t.Helper()
	prog, err := analysis.LoadFixture(srcRoot, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	pkg := prog.Lookup(path)
	pass, err := analysis.RunAnalyzer(a, prog, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		ws, err := fileWants(prog.Fset, f)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range pass.Diagnostics() {
		pos := prog.Fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// fileWants extracts the want expectations of one fixture file.
func fileWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimSuffix(m[1], "*/"))
			for rest != "" {
				if rest[0] != '"' && rest[0] != '`' {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				lit, tail, err := splitQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v in want comment %q", pos.Filename, pos.Line, err, c.Text)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, lit, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				rest = strings.TrimSpace(tail)
			}
		}
	}
	return out, nil
}

// splitQuoted unquotes the leading Go string literal (double- or
// back-quoted) of s and returns it with the remainder.
func splitQuoted(s string) (lit, rest string, err error) {
	if s[0] == '`' {
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[1 : i+1], s[i+2:], nil
		}
		return "", "", fmt.Errorf("unterminated quoted pattern")
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted pattern")
}
