package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package under analysis.
type Package struct {
	Path    string // import path
	Name    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Target  bool // matched the load patterns (vs. pulled in as a dependency)
	listErr string
}

// A Program is a load result: every module-local package in the
// dependency closure of the requested patterns, type-checked against the
// standard library.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	byPath   map[string]*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (pr *Program) Lookup(path string) *Package { return pr.byPath[path] }

// Targets returns the packages that matched the load patterns, in
// import-path order.
func (pr *Program) Targets() []*Package {
	var out []*Package
	for _, p := range pr.Packages {
		if p.Target {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load builds a Program for the packages matching patterns, resolved by
// `go list` from dir (the module root or any directory inside it).
// Module-local dependencies are type-checked from source in dependency
// order; standard-library imports come from the toolchain's export data.
func Load(dir string, patterns []string) (*Program, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	fset := token.NewFileSet()
	pr := &Program{Fset: fset, byPath: map[string]*Package{}}
	imp := newImporter(fset, pr)

	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Standard {
			continue // resolved through export data on demand
		}
		pkg := &Package{
			Path:   lp.ImportPath,
			Name:   lp.Name,
			Dir:    lp.Dir,
			Target: !lp.DepOnly,
		}
		if lp.Error != nil {
			pkg.listErr = lp.Error.Err
		}
		var files []*ast.File
		for _, gf := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", gf, err)
			}
			files = append(files, f)
		}
		pkg.Files = files
		// go list -deps emits dependencies before dependents, so every
		// module-local import is already checked when we get here.
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
		}
		pr.Packages = append(pr.Packages, pkg)
		pr.byPath[pkg.Path] = pkg
	}
	if len(pr.Packages) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %s", strings.Join(patterns, " "))
	}
	return pr, nil
}

// LoadFixture builds a Program rooted at an analysistest-style source
// tree: srcRoot is a testdata/src directory, path an import path under
// it. Imports resolve first against sibling fixture directories, then
// the standard library.
func LoadFixture(srcRoot, path string) (*Program, error) {
	fset := token.NewFileSet()
	pr := &Program{Fset: fset, byPath: map[string]*Package{}}
	imp := newImporter(fset, pr)
	imp.srcRoot = srcRoot
	pkg, err := imp.loadFixtureDir(path)
	if err != nil {
		return nil, err
	}
	pkg.Target = true
	return pr, nil
}

// typeCheck runs the types checker over pkg's parsed files.
func typeCheck(fset *token.FileSet, pkg *Package, imp *progImporter) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect nothing; first error returned below
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return err
}

// progImporter resolves imports for type-checking: module-local and
// fixture packages from the Program, everything else through the
// toolchain's export data with a source-parse fallback.
type progImporter struct {
	fset    *token.FileSet
	prog    *Program
	srcRoot string // non-empty in fixture mode
	gc      types.Importer
	source  types.Importer
}

func newImporter(fset *token.FileSet, prog *Program) *progImporter {
	return &progImporter{
		fset:   fset,
		prog:   prog,
		gc:     importer.ForCompiler(fset, "gc", nil),
		source: importer.ForCompiler(fset, "source", nil),
	}
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if p := pi.prog.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("import cycle or unchecked package %q", path)
		}
		return p.Types, nil
	}
	if pi.srcRoot != "" {
		if st, err := os.Stat(filepath.Join(pi.srcRoot, path)); err == nil && st.IsDir() {
			p, err := pi.loadFixtureDir(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	tp, err := pi.gc.Import(path)
	if err == nil {
		return tp, nil
	}
	return pi.source.Import(path)
}

// loadFixtureDir parses and checks one fixture directory, memoised in
// the Program.
func (pi *progImporter) loadFixtureDir(path string) (*Package, error) {
	if p := pi.prog.byPath[path]; p != nil {
		return p, nil
	}
	dir := filepath.Join(pi.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(pi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing fixture %s: %w", e.Name(), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s has no Go files", path)
	}
	pkg.Name = pkg.Files[0].Name.Name
	// Register before checking so self-imports fail loudly instead of
	// recursing; deps resolve through Import above.
	pi.prog.byPath[path] = pkg
	if err := typeCheck(pi.fset, pkg, pi); err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", path, err)
	}
	pi.prog.Packages = append(pi.prog.Packages, pkg)
	return pkg, nil
}

// RunAnalyzer applies one analyzer to one package of the program and
// returns the pass (diagnostics included).
func RunAnalyzer(a *Analyzer, pr *Program, pkg *Package) (*Pass, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pr.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		Program:  pr,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
	}
	return pass, nil
}
