package gobreg_test

import (
	"testing"

	"durability/internal/analysis/analysistest"
	"durability/internal/analysis/gobreg"
)

func TestGobreg(t *testing.T) {
	analysistest.Run(t, "testdata/src", gobreg.Analyzer,
		"gobbad",
		"gobclean",
	)
}
