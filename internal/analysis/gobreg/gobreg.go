// Package gobreg statically audits the gob surface of snapshot and wire
// types: every concrete type reachable from a declared gob root must be
// encodable and, when it travels behind an interface, gob.Register'ed.
//
// PR 5's runtime audit iterates registered constructors and round-trips
// their states; this analyzer is its static complement, catching the
// type that was never wired into the audit in the first place. A root is
// declared in source with a directive comment on the type declaration:
//
//	//durlint:gobroot
//	type EngineSnapshot struct { ... }
//
// From each root the analyzer walks the reachable type graph (struct
// fields, slice/array/map elements, pointers). Two findings come out:
//
//   - an interface reached from a root whose concrete implementers (any
//     module type satisfying it) are not all gob.Register'ed — an
//     unregistered implementer encodes fine on the sending side of a
//     snapshot and fails only at decode, i.e. during recovery, the one
//     moment the data matters;
//   - a reachable concrete struct carrying unexported fields without
//     custom encoders (GobEncode/GobDecode or MarshalBinary/
//     UnmarshalBinary): gob silently drops unexported fields, so the
//     restored value is subtly wrong instead of loudly broken.
package gobreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"durability/internal/analysis"
)

// Analyzer is the gobreg pass.
var Analyzer = &analysis.Analyzer{
	Name: "gobreg",
	Doc:  "audit gob roots: registration of interface implementers, encoders for unexported state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	roots := gobRoots(pass)
	if len(roots) == 0 {
		return nil
	}
	registered := registeredTypes(pass.Program)
	w := &walker{
		pass:       pass,
		registered: registered,
		seen:       map[string]bool{},
	}
	for _, r := range roots {
		w.root = r
		w.walk(r.obj.Type())
	}
	return nil
}

// gobRoot is one //durlint:gobroot-annotated type declaration.
type gobRoot struct {
	obj *types.TypeName
	pos token.Pos
}

// gobRoots finds the declared roots of the analyzed package.
func gobRoots(pass *analysis.Pass) []*gobRoot {
	var out []*gobRoot
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declMarked := hasRootDirective(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || (!declMarked && !hasRootDirective(ts.Doc) && !hasRootDirective(ts.Comment)) {
					continue
				}
				if obj, ok := pass.ObjectOf(ts.Name).(*types.TypeName); ok {
					out = append(out, &gobRoot{obj: obj, pos: ts.Pos()})
				}
			}
		}
	}
	return out
}

func hasRootDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "durlint:gobroot") {
			return true
		}
	}
	return false
}

// registeredTypes collects every type passed to gob.Register or
// gob.RegisterName anywhere in the program, keyed by the named type's
// full string (pointers stripped: registering *T covers T's identity
// for this audit's purposes).
func registeredTypes(prog *analysis.Program) map[string]bool {
	out := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Register" && sel.Sel.Name != "RegisterName") {
					return true
				}
				obj := pkg.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/gob" {
					return true
				}
				arg := call.Args[len(call.Args)-1]
				if t := pkg.Info.TypeOf(arg); t != nil {
					out[typeKey(t)] = true
				}
				return true
			})
		}
	}
	return out
}

// typeKey names a type with pointers stripped.
func typeKey(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	return types.TypeString(t, nil)
}

type walker struct {
	pass       *analysis.Pass
	registered map[string]bool
	seen       map[string]bool
	root       *gobRoot
}

// walk traverses the reachable type graph from t. The visited set keys
// on the full type string (pointers intact): typeKey's pointer
// stripping would make *T and T collide, so walking *T would mark T
// seen before ever reaching it and pointer-held structs would silently
// escape the audit.
func (w *walker) walk(t types.Type) {
	key := types.TypeString(t, nil)
	if w.seen[key] {
		return
	}
	w.seen[key] = true

	switch tt := t.(type) {
	case *types.Pointer:
		w.walk(tt.Elem())
	case *types.Slice:
		w.walk(tt.Elem())
	case *types.Array:
		w.walk(tt.Elem())
	case *types.Map:
		w.walk(tt.Key())
		w.walk(tt.Elem())
	case *types.Named:
		w.named(tt)
	case *types.Struct:
		w.structFields(tt)
	case *types.Interface:
		// An unnamed interface field: audit implementers the same way.
		w.iface(t, tt)
	}
}

func (w *walker) named(n *types.Named) {
	obj := n.Obj()
	if iface, ok := n.Underlying().(*types.Interface); ok {
		// Standard-library interfaces (error, fmt.Stringer, ...) would
		// enumerate the whole world; the gob contract we audit is the
		// module's own.
		if moduleType(w.pass, obj) {
			w.iface(n, iface)
		}
		return
	}
	// Custom encoders make the representation opaque: gob never looks at
	// the fields, so neither do we.
	if hasCustomEncoder(n) {
		return
	}
	if st, ok := n.Underlying().(*types.Struct); ok {
		if moduleType(w.pass, obj) && hasUnexportedData(st) {
			w.reportAt(obj,
				"type %s is reachable from gob root %s, has unexported fields and no GobEncode/MarshalBinary: gob silently drops them, so a restored value loses state",
				typeKey(n), w.root.obj.Name())
		}
		w.structFields(st)
		return
	}
	w.walk(n.Underlying())
}

func (w *walker) structFields(st *types.Struct) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // not encoded; the unexported-data check reports the type itself
		}
		w.walk(f.Type())
	}
}

// iface audits every module type implementing the reachable interface.
func (w *walker) iface(t types.Type, iface *types.Interface) {
	if iface.NumMethods() == 0 {
		return // `any`: nothing enumerable to audit statically
	}
	for _, pkg := range w.pass.Program.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			ct := tn.Type()
			if _, isIface := ct.Underlying().(*types.Interface); isIface {
				continue
			}
			if !types.Implements(ct, iface) && !types.Implements(types.NewPointer(ct), iface) {
				continue
			}
			if !w.registered[typeKey(ct)] {
				w.reportAt(tn,
					"type %s implements %s (reachable from gob root %s) but is never gob.Register'ed: a snapshot holding it encodes, then fails at decode — during recovery",
					typeKey(ct), typeKey(t), w.root.obj.Name())
			}
			w.walk(ct)
		}
	}
}

// reportAt anchors the diagnostic at the offending type when it is
// declared in the analyzed package, else at the root declaration.
func (w *walker) reportAt(obj types.Object, format string, args ...any) {
	pos := w.root.pos
	if obj.Pkg() == w.pass.Pkg {
		pos = obj.Pos()
	}
	w.pass.Reportf(pos, format, args...)
}

// moduleType reports whether obj is declared in one of the loaded
// (module or fixture) packages — standard-library types manage their own
// encoding contracts.
func moduleType(pass *analysis.Pass, obj types.Object) bool {
	if obj.Pkg() == nil {
		return false
	}
	return pass.Program.Lookup(obj.Pkg().Path()) != nil
}

// hasCustomEncoder reports whether T or *T provides gob- or
// binary-marshalling methods.
func hasCustomEncoder(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		if hasMethod(t, name) || hasMethod(types.NewPointer(t), name) {
			return true
		}
	}
	return false
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// hasUnexportedData reports whether the struct has at least one
// unexported non-embedded field.
func hasUnexportedData(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); !f.Exported() && !f.Embedded() {
			return true
		}
	}
	return false
}
