// Package gobbad declares a gob root whose reachable surface has two
// holes: an unregistered interface implementer and a struct whose
// unexported state gob would silently drop.
package gobbad

import "encoding/gob"

// Event is the journal payload contract.
type Event interface{ event() }

// Registered is wired in correctly below.
type Registered struct{ N int }

func (Registered) event() {}

// Forgotten implements Event but nobody registered it: a snapshot
// holding one encodes, then fails at decode — during recovery.
type Forgotten struct{ S string } // want `type gobbad\.Forgotten implements gobbad\.Event .* never gob\.Register'ed`

func (Forgotten) event() {}

// Cursor hides its position in unexported fields with no custom
// encoder: a restored Cursor silently resets.
type Cursor struct { // want `type gobbad\.Cursor is reachable from gob root Snapshot, has unexported fields and no GobEncode/MarshalBinary`
	Name string
	pos  int64
}

// LaneVec is a simulation-kernel state vector — flat lane storage with
// a spill free list, all unexported. Vecs are transient per-worker
// scratch and must never be persisted; snapshotting one is exactly the
// mistake this diagnostic catches.
type LaneVec struct { // want `type gobbad\.LaneVec is reachable from gob root Snapshot, has unexported fields and no GobEncode/MarshalBinary`
	lane  []float64
	spill []float64
	free  []int
}

// Snapshot is the durable root.
//
//durlint:gobroot
type Snapshot struct {
	Tail   []Event
	Cursor Cursor
	Hot    *LaneVec
}

func init() {
	gob.Register(Registered{})
}

// use keeps the unexported field honest.
func (c *Cursor) Advance() { c.pos++ }

// Step keeps LaneVec's unexported fields honest.
func (v *LaneVec) Step(i int) { v.lane[i]++ }
