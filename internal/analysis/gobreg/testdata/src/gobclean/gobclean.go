// Package gobclean closes every hole gobbad leaves open: all
// implementers registered, unexported state behind custom encoders.
package gobclean

import (
	"encoding/binary"
	"encoding/gob"
)

// Event is the journal payload contract.
type Event interface{ event() }

// Created is registered below.
type Created struct{ N int }

func (Created) event() {}

// Closed is registered below.
type Closed struct{ S string }

func (Closed) event() {}

// Cursor carries unexported state through MarshalBinary, so gob (which
// honours encoding.BinaryMarshaler) round-trips it faithfully.
type Cursor struct {
	pos int64
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c Cursor) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(c.pos))
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Cursor) UnmarshalBinary(data []byte) error {
	c.pos = int64(binary.LittleEndian.Uint64(data))
	return nil
}

// LaneVec mirrors the simulation kernel's state vectors: unexported
// flat lane storage, no encoders — and deliberately NOT reachable from
// any gob root. Transient per-worker scratch rebuilt from the model on
// every run stays outside the snapshot surface, so the walker must not
// flag it.
type LaneVec struct {
	lane  []float64
	spill []float64
	free  []int
}

// Step keeps LaneVec's unexported fields honest.
func (v *LaneVec) Step(i int) { v.lane[i]++ }

// Snapshot is the durable root; everything reachable is accounted for.
//
//durlint:gobroot
type Snapshot struct {
	Tail   []Event
	Cursor Cursor
}

func init() {
	gob.Register(Created{})
	gob.Register(Closed{})
}
