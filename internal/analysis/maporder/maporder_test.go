package maporder_test

import (
	"testing"

	"durability/internal/analysis/analysistest"
	"durability/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src", maporder.Analyzer,
		"mapbad",
		"mapclean",
	)
}
