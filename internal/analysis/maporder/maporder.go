// Package maporder flags slices built from map iteration that are never
// sorted inside the building function.
//
// Go randomizes map iteration order per range statement. A slice
// appended to while ranging over a map therefore carries a fresh random
// permutation on every run — poison for this repository's determinism
// guarantees the moment it reaches a counter merge, a gob encoder, a WAL
// append or an HTTP response (snapshot bytes differ between identical
// runs; sweep and fold orders drift between local and cluster
// placements). The fix is always local: sort the slice (or collect the
// keys, sort them, and iterate the map in key order) before the slice
// escapes.
//
// The analyzer reports every range-over-map whose body appends to a
// slice declared outside the loop, unless a sort call (package sort or
// slices) naming that slice appears later in the same function. Loops
// that accumulate into order-insensitive aggregates (sums, sets, maps)
// are not reported; slices whose order provably cannot matter should
// carry a //durlint:ignore maporder <reason> annotation instead of
// staying silent.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"durability/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag slices appended from map iteration without a subsequent sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// appendTarget is one slice appended to inside a map-range body.
type appendTarget struct {
	rng  *ast.RangeStmt
	expr ast.Expr // the append destination
	key  string   // canonical spelling used to match sort calls
}

// checkFunc analyzes one function body. Function literals nested inside
// are analyzed as part of the same body: a sort in the enclosing
// function still clears a loop inside a closure and vice versa, which
// errs on the quiet side.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var targets []appendTarget
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass.TypeOf(rng.X)) {
			return true
		}
		for _, tgt := range mapRangeAppends(pass, rng) {
			targets = append(targets, tgt)
		}
		return true
	})
	if len(targets) == 0 {
		return
	}
	// A sort anywhere after the loop's start clears the target; sorts
	// inside the loop body count too (sorted-insert idioms).
	var sorts []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSortCall(pass, call) {
			sorts = append(sorts, call)
		}
		return true
	})
	for _, tgt := range targets {
		if sortedAfter(tgt, sorts) {
			continue
		}
		pass.Reportf(tgt.rng.Pos(),
			"slice %s is appended from a map iteration and never sorted in this function; map order is randomized per run — sort it (or iterate sorted keys) before it reaches a merge, encoder, WAL append or response", tgt.key)
	}
}

// mapRangeAppends returns the slices appended to inside rng's body that
// are declared outside the loop.
func mapRangeAppends(pass *analysis.Pass, rng *ast.RangeStmt) []appendTarget {
	var out []appendTarget
	seen := map[string]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
			return true
		}
		dst := as.Lhs[0]
		if !sameExpr(dst, call.Args[0]) {
			return true // append into a different variable: not accumulation
		}
		if id, ok := dst.(*ast.Ident); ok {
			obj := pass.ObjectOf(id)
			if obj == nil || insideRange(obj.Pos(), rng) {
				return true // loop-local scratch, dies with the iteration
			}
		}
		key := types.ExprString(dst)
		if !seen[key] {
			seen[key] = true
			out = append(out, appendTarget{rng: rng, expr: dst, key: key})
		}
		return true
	})
	return out
}

// sortedAfter reports whether any sort call positioned at or after the
// range statement names the target.
func sortedAfter(tgt appendTarget, sorts []*ast.CallExpr) bool {
	for _, call := range sorts {
		if call.End() < tgt.rng.Pos() {
			continue
		}
		if callMentions(call, tgt.key) {
			return true
		}
	}
	return false
}

// callMentions reports whether the canonical spelling of any
// subexpression of call's arguments matches key.
func callMentions(call *ast.CallExpr, key string) bool {
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if e, ok := n.(ast.Expr); ok && types.ExprString(e) == key {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// isSortCall reports whether call invokes anything from package sort or
// slices.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

func insideRange(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}

func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}
