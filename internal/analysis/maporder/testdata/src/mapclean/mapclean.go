// Package mapclean shows the sanctioned shapes: collect then sort, or
// never range a map into an escaping slice at all.
package mapclean

import (
	"sort"
)

// SortedKeys is the canonical idiom: collect, sort, then use.
func SortedKeys(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SortedValues sorts with sort.Slice after collecting.
func SortedValues(m map[string]float64) []float64 {
	var vs []float64
	for _, v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// SliceRange ranges a slice, not a map: order is the slice's own.
func SliceRange(in []string) []string {
	var out []string
	for _, s := range in {
		out = append(out, s)
	}
	return out
}

// Sum accumulates into a scalar; no slice, no ordering to leak.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Scratch appends to a slice declared inside the loop body: it dies
// with the iteration and cannot leak order.
func Scratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
