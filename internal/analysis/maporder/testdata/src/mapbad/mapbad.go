// Package mapbad builds slices from map iteration and lets them escape
// unsorted — every function here leaks a per-run random permutation.
package mapbad

import "encoding/json"

// Names feeds an HTTP-response-shaped payload straight from map order.
func Names(m map[string]int) ([]byte, error) {
	var names []string
	for name := range m { // want `slice names is appended from a map iteration and never sorted`
		names = append(names, name)
	}
	return json.Marshal(names)
}

// Merge folds counters in map order: local and sharded runs fold in
// different orders and drift apart in floating point.
func Merge(shards map[int][]float64) []float64 {
	var all []float64
	for _, s := range shards { // want `slice all is appended from a map iteration and never sorted`
		all = append(all, s...)
	}
	return all
}

type payload struct {
	Entries []string
}

// Fields appends through a struct field — same leak, different syntax.
func Fields(m map[string]bool) payload {
	var p payload
	for k := range m { // want `slice p\.Entries is appended from a map iteration and never sorted`
		p.Entries = append(p.Entries, k)
	}
	return p
}

// Counted is acknowledged order-insensitive accumulation.
func Counted(m map[string]int) []int {
	var ns []int
	//durlint:ignore maporder the slice is summed by the caller, order cannot matter
	for _, v := range m {
		ns = append(ns, v)
	}
	return ns
}
