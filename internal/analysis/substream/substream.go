// Package substream flags rng substream constructions that mix identity
// into the seed with arithmetic.
//
// The determinism contract of internal/rng is positional: root i draws
// substream i of one base seed, so every placement of the work — local,
// sharded, replayed after a crash — reproduces identical draws. Folding
// an identity into the *seed* argument with `^`, `+`, `-` or `*`
// silently breaks the contract's independence guarantee: PR 3 shipped
// exactly this as rng.NewStream(seed^id, 1<<62), where distinct
// (seed, id) pairs collide on seed^id and share one bootstrap sequence.
// The approved constructions keep the seed pristine and put identity in
// the stream-index argument, reserving disjoint index windows with
// shifts and masks (1<<62|id, uint64(stage)<<32|uint64(i)), which cannot
// collide across distinct identities.
//
// The analyzer reports any call to an rng package's NewStream — or to
// the in-place Source.SeedStream the pooled simulation-kernel lanes use,
// which takes the same (seed, stream) pair — whose seed (first) argument
// contains `^`, `+`, `-` or `*` over non-constant operands, and any
// stream-index argument using `^` (XOR folds are how seeds get mixed by
// the back door). Constant-only arithmetic (1<<62 | 3) stays legal
// anywhere.
package substream

import (
	"go/ast"
	"go/token"
	"strings"

	"durability/internal/analysis"
)

// Analyzer is the substream pass.
var Analyzer = &analysis.Analyzer{
	Name: "substream",
	Doc:  "flag rng substream seeds derived with identity arithmetic instead of index-offset constructors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isStreamSeeder(pass, call) || len(call.Args) < 2 {
			return true
		}
		if op := mixingOp(pass, call.Args[0], token.XOR, token.ADD, token.SUB, token.MUL); op != token.ILLEGAL {
			pass.Reportf(call.Args[0].Pos(),
				"substream seed mixes identity with %q; distinct (seed, id) pairs can collide and share a sequence — keep the seed pristine and offset the stream index instead (e.g. rng.NewStream(seed, 1<<62|id))", op)
		}
		for _, arg := range call.Args[1:] {
			if op := mixingOp(pass, arg, token.XOR); op != token.ILLEGAL {
				pass.Reportf(arg.Pos(),
					"substream index folds identity with %q; XOR windows overlap — reserve disjoint index windows with shifts and masks (e.g. 1<<62|id)", op)
			}
		}
		return true
	})
	return nil
}

// isStreamSeeder reports whether call invokes a (seed, stream)
// substream constructor of an rng package (the repository's
// internal/rng or a fixture shim named rng): the NewStream function or
// the equivalent in-place Source.SeedStream method. Both take the same
// argument pair, so the same mixing rules apply.
func isStreamSeeder(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "NewStream" && sel.Sel.Name != "SeedStream") {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "rng" || strings.HasSuffix(p, "/rng")
}

// mixingOp returns the first of the given binary operators found inside
// expr with at least one non-constant operand, or token.ILLEGAL. Shift
// and mask composition (<<, |, &) is the approved way to build index
// windows and is never reported.
func mixingOp(pass *analysis.Pass, expr ast.Expr, ops ...token.Token) token.Token {
	found := token.ILLEGAL
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != token.ILLEGAL {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		for _, op := range ops {
			if bin.Op == op && !isConst(pass, bin) {
				found = op
				return false
			}
		}
		return true
	})
	return found
}

// isConst reports whether the checker evaluated e to a constant.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
