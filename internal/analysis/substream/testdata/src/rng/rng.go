// Package rng is a fixture shim with the same constructor shape as the
// repository's internal/rng.
package rng

// Source is a stand-in generator.
type Source struct{ s uint64 }

// NewStream mirrors internal/rng.NewStream's signature.
func NewStream(seed, stream uint64) *Source {
	return &Source{s: seed ^ stream}
}

// SeedStream mirrors internal/rng.Source.SeedStream: the in-place
// re-seed the pooled kernel lanes use.
func (s *Source) SeedStream(seed, stream uint64) {
	s.s = seed ^ stream
}
