// Package clean shows the approved substream constructions: the seed
// stays pristine and identity lands in the index argument through
// disjoint shift/mask windows.
package clean

import "rng"

// PerRoot gives root i substream i — the positional contract.
func PerRoot(seed uint64, idx int) *rng.Source {
	return rng.NewStream(seed, uint64(idx))
}

// Bootstrap reserves a disjoint window above the root indices (the
// PR 3 fix).
func Bootstrap(seed, id uint64) *rng.Source {
	return rng.NewStream(seed, 1<<62|id)
}

// Staged composes a window from stage and index with shifts — no
// overlap between stages.
func Staged(seed uint64, stage, i int) *rng.Source {
	return rng.NewStream(seed, uint64(stage)<<32|uint64(i))
}

// ConstMix is constant-only arithmetic: no identity, no collision.
func ConstMix(seed uint64) *rng.Source {
	return rng.NewStream(seed, 1<<62+3)
}

// PooledLane re-seeds a pooled per-lane Source the approved way: seed
// pristine, root identity in the stream index — how the vectorized
// kernel assigns substreams without per-root allocation.
func PooledLane(src *rng.Source, seed uint64, root int64) {
	src.SeedStream(seed, uint64(root))
}
