// Package bad reproduces the PR 3 bootstrap-collision bug class:
// identity folded into the seed argument by arithmetic.
package bad

import "rng"

// Bootstrap is the exact shipped bug: rng.NewStream(seed^id, 1<<62)
// collides every (seed, id) pair with equal seed^id, so two distinct
// subscriptions share one bootstrap sequence.
func Bootstrap(seed, id uint64) *rng.Source {
	return rng.NewStream(seed^id, 1<<62) // want `substream seed mixes identity with "\^"`
}

// Offset mixes by addition — same collision class.
func Offset(seed, id uint64) *rng.Source {
	return rng.NewStream(seed+id, 1) // want `substream seed mixes identity with "\+"`
}

// Scaled mixes by multiplication.
func Scaled(seed uint64, stage int) *rng.Source {
	return rng.NewStream(seed*uint64(stage), 1) // want `substream seed mixes identity with "\*"`
}

// XORIndex hides the fold in the index argument: XOR windows overlap.
func XORIndex(seed, id uint64) *rng.Source {
	return rng.NewStream(seed, 1<<62^id) // want `substream index folds identity with "\^"`
}

// Reseed folds identity into the seed of an in-place re-seed — the
// pooled-lane variant of the same collision class.
func Reseed(src *rng.Source, seed, root uint64) {
	src.SeedStream(seed^root, 0) // want `substream seed mixes identity with "\^"`
}

// ReseedIndex hides the fold in the in-place call's index argument.
func ReseedIndex(src *rng.Source, seed, root uint64) {
	src.SeedStream(seed, 1<<62^root) // want `substream index folds identity with "\^"`
}

// Acknowledged shows a justified suppression.
func Acknowledged(seed, id uint64) *rng.Source {
	//durlint:ignore substream test-only collision probe, both operands constant at every call site
	return rng.NewStream(seed+id, 1)
}
