package substream_test

import (
	"testing"

	"durability/internal/analysis/analysistest"
	"durability/internal/analysis/substream"
)

func TestSubstream(t *testing.T) {
	analysistest.Run(t, "testdata/src", substream.Analyzer,
		"internal/stream/bad",
		"internal/stream/clean",
	)
}
