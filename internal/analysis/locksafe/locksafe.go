// Package locksafe flags mutexes held across blocking I/O: net/rpc
// calls, HTTP round-trips, file/WAL syncs and long-poll waits.
//
// A lock held across a network round-trip or fsync turns one slow peer
// into a convoy: every goroutine needing the lock — tick sweeps, stats
// scrapes, admission checks — stalls behind a disk or a dead worker's
// TCP timeout. The serving layer's rule is to snapshot what the
// critical section needs, release, then block. The analyzer simulates
// each function body linearly: Lock/RLock marks the mutex held, Unlock
// releases it, defer Unlock holds it to the end, and any blocking call
// made while something is held is reported. Goroutine bodies and other
// function literals are analyzed separately — work handed off with `go`
// does not run under the caller's critical section.
//
// Blocking calls recognised: (*net/rpc.Client).Call, net/http client
// calls (Do/Get/Post/PostForm/Head, RoundTrip, and the package-level
// helpers), any Sync method (os.File and WAL-shaped types), and any
// Wait method taking a context.Context (the long-poll idiom).
//
// Intentionally serialized blocking — a WAL whose own mutex orders its
// appends and syncs — is the expected suppression case:
// //durlint:ignore locksafe <reason>.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"durability/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flag mutexes held across rpc calls, HTTP round-trips, syncs and long-poll waits",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// event is one lock-relevant occurrence in a body, in source order.
type event struct {
	pos  token.Pos
	kind int // lock, unlock, deferUnlock, blocking
	key  string
	what string // blocking description
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evBlocking
)

// checkBody linearly simulates one function body. Nested function
// literals are opaque here; they get their own scan.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			return false // analyzed separately
		}
		if def, ok := n.(*ast.DeferStmt); ok {
			if key, kind := lockEvent(pass, def.Call); kind == evUnlock && key != "" {
				events = append(events, event{pos: def.Pos(), kind: evDeferUnlock, key: key})
			}
			// Don't descend: the deferred unlock must not double as a
			// live unlock at its source position.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, kind := lockEvent(pass, call); key != "" {
			events = append(events, event{pos: call.Pos(), kind: kind, key: key})
			return true
		}
		if what := blockingCall(pass, call); what != "" {
			events = append(events, event{pos: call.Pos(), kind: evBlocking, what: what})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case evLock, evDeferUnlock:
			// A deferred unlock means the lock stays held for the rest of
			// the body — exactly the window we must scan.
			if ev.kind == evLock {
				held[ev.key] = true
			}
		case evUnlock:
			delete(held, ev.key)
		case evBlocking:
			for key := range held {
				pass.Reportf(ev.pos, "%s while holding %s: one slow peer or disk convoys every goroutine waiting on the lock — snapshot state, release, then block", ev.what, key)
				break // one report per call is enough
			}
		}
	}
}

// lockEvent classifies a call as Lock/RLock or Unlock/RUnlock on a
// mutex-shaped receiver and returns the receiver's canonical spelling.
func lockEvent(pass *analysis.Pass, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return "", 0
	}
	if !isMutex(pass.TypeOf(sel.X)) {
		return "", 0
	}
	return types.ExprString(sel.X), kind
}

// isMutex reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex, or embeds one.
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
		}
		t = named.Underlying()
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Embedded() && isMutex(f.Type()) {
				return true
			}
		}
	}
	return false
}

// blockingCall classifies call as blocking I/O and returns a short
// description, or "".
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil {
		return ""
	}

	// Package-level net/http helpers: http.Get(url), http.Post(...).
	if pkg, ok := pass.ObjectOf(ident(sel.X)).(*types.PkgName); ok {
		if pkg.Imported().Path() == "net/http" {
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "HTTP round-trip (http." + name + ")"
			}
		}
		return ""
	}

	recv := pass.TypeOf(sel.X)
	switch name {
	case "Call":
		if typeIs(recv, "net/rpc", "Client") {
			return "synchronous net/rpc call"
		}
	case "Do", "Get", "Post", "PostForm", "Head":
		if typeIs(recv, "net/http", "Client") {
			return "HTTP round-trip ((*http.Client)." + name + ")"
		}
	case "RoundTrip":
		return "HTTP round-trip (RoundTrip)"
	case "Sync":
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Params().Len() == 0 {
			return "durable sync (" + typeKey(recv) + ".Sync)"
		}
	case "Wait":
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Params().Len() > 0 {
			if typeIs(sig.Params().At(0).Type(), "context", "Context") {
				return "long-poll wait"
			}
		}
	}
	return ""
}

func ident(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	if id == nil {
		return &ast.Ident{Name: ""}
	}
	return id
}

// typeIs reports whether t (pointers stripped) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func typeKey(t types.Type) string {
	if t == nil {
		return "?"
	}
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	return strings.TrimPrefix(s, "*")
}
