package locksafe_test

import (
	"testing"

	"durability/internal/analysis/analysistest"
	"durability/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, "testdata/src", locksafe.Analyzer,
		"lockbad",
		"lockclean",
	)
}
