// Package lockclean blocks only outside critical sections: snapshot
// state, release, then do the slow thing.
package lockclean

import (
	"net/rpc"
	"os"
	"sync"
)

// Store releases before the fsync.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	tail []byte
}

// Flush snapshots the buffer under the lock, syncs outside it.
func (s *Store) Flush() error {
	s.mu.Lock()
	buf := append([]byte(nil), s.tail...)
	s.tail = s.tail[:0]
	s.mu.Unlock()
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	return s.f.Sync()
}

// Pool hands the slow call to a goroutine: the literal's body is its
// own scope and does not run under the caller's lock.
type Pool struct {
	mu   sync.Mutex
	cl   *rpc.Client
	busy int
}

// Kick bumps the counter under the lock and calls out asynchronously.
func (p *Pool) Kick(args, reply any) {
	p.mu.Lock()
	p.busy++
	cl := p.cl
	p.mu.Unlock()
	go func() {
		_ = cl.Call("Worker.Run", args, reply)
	}()
}
