// Package lockbad holds locks across blocking I/O — every shape the
// serving layer must never ship.
package lockbad

import (
	"context"
	"net/rpc"
	"os"
	"sync"
)

// Store convoys: the explicit Lock/Unlock pair brackets an fsync.
type Store struct {
	mu sync.Mutex
	f  *os.File
}

// Flush fsyncs inside the critical section.
func (s *Store) Flush() error {
	s.mu.Lock()
	err := s.f.Sync() // want `durable sync \(os\.File\.Sync\) while holding s\.mu`
	s.mu.Unlock()
	return err
}

// Pool convoys through a deferred unlock: the lock lives to the end of
// the body, so the rpc round-trip runs under it.
type Pool struct {
	mu sync.Mutex
	cl *rpc.Client
}

// Refresh makes a synchronous rpc call with the pool locked.
func (p *Pool) Refresh(args, reply any) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cl.Call("Worker.Run", args, reply) // want `synchronous net/rpc call while holding p\.mu`
}

// waiter is a long-poll surface.
type waiter struct{}

func (waiter) Wait(ctx context.Context, since int64) error { return nil }

// Observe long-polls while holding a read lock.
type Observe struct {
	mu sync.RWMutex
	w  waiter
}

// Block holds the read lock across the wait.
func (o *Observe) Block(ctx context.Context) error {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.w.Wait(ctx, 0) // want `long-poll wait while holding o\.mu`
}

// Journal shows the sanctioned suppression: a WAL's own mutex exists to
// serialize append+sync, so blocking under it is the contract.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// Append serializes the write and its durability barrier.
func (j *Journal) Append(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	//durlint:ignore locksafe the journal mutex exists to serialize append+sync; durability requires the barrier inside it
	return j.f.Sync()
}
