// Package detsource forbids nondeterministic sources in the packages
// whose output must be bit-for-bit reproducible.
//
// The repository's headline guarantees — local == cluster equality,
// replayed recovery == uninterrupted serving — hold only if the sampling
// path never consults a source of nondeterminism. Inside the
// deterministic packages (internal/core, exec, opt, stream, rng, and
// stochastic — the models' Step/StepVec bodies are on the bit-for-bit
// path of every sampler) this analyzer reports:
//
//   - calls to time.Now, time.Since or time.Until (wall clock);
//   - any use of math/rand or math/rand/v2 (globally seeded generators —
//     internal/rng is the only sanctioned randomness substrate);
//   - select statements with two or more value-binding receive cases:
//     when several channels are ready the runtime picks one at random,
//     so feeding bound receive values into counter state makes the
//     merge order scheduling-dependent. Pure signal waits
//     (case <-ctx.Done(), case <-ch with no binding) stay legal.
//
// Timing telemetry that never feeds sampled values is not an exception
// to suppress but a seam to route through: internal/telemetry exposes
// Now and Since as the one sanctioned wall-clock sink, and its import
// path deliberately falls outside the deterministic set, so deterministic
// packages may call telemetry.Now freely while every raw time.Now keeps
// failing the build. This keeps "who reads the clock" greppable at a
// single package boundary instead of scattered across ignore comments.
package detsource

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"durability/internal/analysis"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid wall-clock, global math/rand and racing selects in deterministic packages",
	Run:  run,
}

// deterministicPath matches the import paths whose sources must stay
// deterministic. Fixture packages under testdata/src reuse the same
// shapes (e.g. "internal/core/bad").
var deterministicPath = regexp.MustCompile(`(^|/)internal/(core|exec|opt|stream|rng|stochastic)(/|$)`)

// wallClockFuncs are the time package functions that read the wall
// clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !deterministicPath.MatchString(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch impPath(imp) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "deterministic package imports %s; use internal/rng, the seeded substream substrate", impPath(imp))
			}
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if obj := pass.ObjectOf(n.Sel); obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "time":
					if _, isFunc := obj.(*types.Func); isFunc && wallClockFuncs[n.Sel.Name] {
						pass.Reportf(n.Pos(), "deterministic package reads the wall clock via time.%s; route timing through internal/telemetry (Now/Since), the sanctioned clock seam", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(), "deterministic package uses %s.%s; use internal/rng, the seeded substream substrate", obj.Pkg().Path(), n.Sel.Name)
				}
			}
		case *ast.SelectStmt:
			if bound := bindingReceives(n); len(bound) >= 2 {
				pass.Reportf(n.Pos(), "select binds values from %d receive cases; ready-channel choice is randomized, so downstream state depends on scheduling — merge through one ordered channel instead", len(bound))
			}
		}
		return true
	})
	return nil
}

// bindingReceives returns the comm clauses that bind a received value
// (case v := <-ch / case v = <-ch). Signal-only receives (case <-ch)
// and sends do not count: they cannot leak the runtime's random
// ready-case choice into data.
func bindingReceives(sel *ast.SelectStmt) []*ast.CommClause {
	var out []*ast.CommClause
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if recv, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
					out = append(out, cc)
				}
			}
		}
	}
	return out
}

func impPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	return s[1 : len(s)-1]
}
