package detsource_test

import (
	"testing"

	"durability/internal/analysis/analysistest"
	"durability/internal/analysis/detsource"
)

func TestDetsource(t *testing.T) {
	analysistest.Run(t, "testdata/src", detsource.Analyzer,
		"internal/core/bad",
		"internal/core/clean",
		"internal/stochastic/bad",
		"internal/stochastic/clean",
		"outside",
	)
}
