// Package outside is not a deterministic package: wall-clock reads and
// global rand are legal here and detsource must stay silent.
package outside

import (
	"math/rand"
	"time"
)

// Jitter is fine outside the deterministic packages.
func Jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Second))) + time.Since(time.Now())
}
