// Package bad exercises detsource inside the model package's import
// path: internal/stochastic joined the deterministic set when the
// vectorized kernel made model Step/StepVec bodies part of every
// sampler's bit-for-bit contract.
package bad

import (
	"math/rand" // want `deterministic package imports math/rand`
	"time"
)

// JitterStep perturbs a model step with the globally seeded generator —
// two runs of the same substream would diverge.
func JitterStep(v float64) float64 {
	return v + rand.NormFloat64() // want `uses math/rand\.NormFloat64`
}

// StampedStep folds the wall clock into a state transition.
func StampedStep(v float64) float64 {
	return v * float64(time.Now().Unix()) // want `reads the wall clock via time\.Now`
}
