// Package clean shows the model-package idioms detsource must accept:
// all randomness through an injected seeded source, bulk stepping
// included.
package clean

// Source stands in for internal/rng.Source: the injected, seeded
// substrate every model draw must come from.
type Source struct{ s uint64 }

// Norm is a stand-in deterministic draw.
func (s *Source) Norm() float64 {
	s.s = s.s*6364136223846793005 + 1442695040888963407
	return float64(int64(s.s>>11)) / (1 << 53)
}

// Step advances one lane from its own source — the scalar contract.
func Step(v float64, src *Source) float64 {
	return v + src.Norm()
}

// StepVec advances the listed lanes, each from its own source — the
// bulk fast path the kernel drives. Nothing here may consult a clock
// or a global generator.
func StepVec(lane []float64, lanes []int, src []*Source) {
	for _, i := range lanes {
		lane[i] += src[i].Norm()
	}
}
