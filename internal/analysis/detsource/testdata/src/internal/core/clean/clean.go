// Package clean shows the deterministic idioms detsource must accept.
package clean

import (
	"context"
	"time"

	"internal/telemetry"
)

// Wait uses durations and signal-only selects: no wall clock, no bound
// racing receives.
func Wait(ctx context.Context, ch chan struct{}, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Collect binds from a single receive case; the other arm is a pure
// cancellation signal, so the result cannot depend on the runtime's
// ready-case choice.
func Collect(ctx context.Context, results chan int) (int, error) {
	select {
	case v := <-results:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Timed routes wall-clock telemetry through the sanctioned seam: the
// telemetry package lives outside the deterministic set, so these calls
// pass where raw time.Now/time.Since fail.
func Timed() time.Duration {
	began := telemetry.Now()
	return telemetry.Since(began)
}
