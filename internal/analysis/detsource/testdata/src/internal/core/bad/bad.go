// Package bad exercises every detsource violation class inside a
// deterministic import path (internal/core/...).
package bad

import (
	"math/rand" // want `deterministic package imports math/rand`
	"time"
)

// Stamp reads the wall clock from a sampling path.
func Stamp() time.Time {
	return time.Now() // want `reads the wall clock via time\.Now`
}

// Elapsed is just as nondeterministic as Now.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `reads the wall clock via time\.Since`
}

// Draw uses the globally seeded generator.
func Draw() float64 {
	return rand.Float64() // want `uses math/rand\.Float64`
}

// MergeRace folds whichever worker answers first into the counter —
// the ready-channel choice is randomized, so the fold order races.
func MergeRace(a, b chan int) int {
	total := 0
	for i := 0; i < 2; i++ {
		select { // want `select binds values from 2 receive cases`
		case v := <-a:
			total += v
		case v := <-b:
			total += v
		}
	}
	return total
}
