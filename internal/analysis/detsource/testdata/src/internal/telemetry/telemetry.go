// Package telemetry mirrors the real internal/telemetry clock seam: its
// import path is deliberately outside detsource's deterministic set, so
// deterministic fixtures may route timing through it.
package telemetry

import "time"

// Now reads the wall clock through the sanctioned seam.
func Now() time.Time { return time.Now() }

// Since reports time elapsed through the sanctioned seam.
func Since(t time.Time) time.Duration { return time.Since(t) }
