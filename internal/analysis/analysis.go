// Package analysis is the static-analysis substrate behind cmd/durlint:
// a deliberately small, stdlib-only re-implementation of the
// golang.org/x/tools/go/analysis surface this repository needs. The
// container build must stay dependency-free, so instead of importing
// x/tools we mirror its shape — an Analyzer owns a Run func over a Pass,
// a Pass reports position-anchored Diagnostics — on top of go/ast,
// go/parser and go/types.
//
// The five analyzers in the subpackages (detsource, substream, maporder,
// gobreg, locksafe) encode the source-level invariants every headline
// guarantee of this repository rests on; ARCHITECTURE.md's "Invariants"
// section maps each invariant to its analyzer.
//
// # Suppression
//
// A finding that is understood and accepted is suppressed in source with
//
//	//durlint:ignore <analyzer> <reason>
//
// either on the flagged line or alone on the line directly above it.
// <analyzer> is one of the five analyzer names or "all"; <reason> is
// mandatory — a bare ignore is itself reported as a finding by the
// driver, so every suppression in the tree carries its justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static check: a name findings are reported
// under (and suppressions keyed by), documentation, and the Run function
// applied to every package under analysis.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass carries one analyzer's view of one package: its syntax, type
// information, and the surrounding Program for whole-module checks
// (gobreg walks every package's gob.Register calls, for example).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Path     string // import path of the package under analysis
	Program  *Program

	diagnostics []Diagnostic
	suppressed  []Diagnostic
	directives  map[string][]Directive // file name -> directives, lazily built
}

// Reportf records a finding at pos unless a durlint:ignore directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name}
	if p.suppressedAt(pos) {
		p.suppressed = append(p.suppressed, d)
		return
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Diagnostics returns the unsuppressed findings recorded so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// Suppressed returns the findings silenced by durlint:ignore directives.
func (p *Pass) Suppressed() []Diagnostic { return p.suppressed }

// suppressedAt reports whether a durlint:ignore directive for this
// analyzer covers the given position: same line, or alone on the
// preceding line.
func (p *Pass) suppressedAt(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	if p.directives == nil {
		p.directives = map[string][]Directive{}
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			p.directives[name] = FileDirectives(p.Fset, f)
		}
	}
	for _, dir := range p.directives[position.Filename] {
		if dir.Line != position.Line && dir.Line != position.Line-1 {
			continue
		}
		if dir.Analyzer == p.Analyzer.Name || dir.Analyzer == "all" {
			return true
		}
	}
	return false
}

// A Directive is one parsed //durlint:ignore comment.
type Directive struct {
	Pos      token.Pos
	Line     int
	Analyzer string // analyzer name, "all", or "" when malformed
	Reason   string
	Raw      string
}

var directiveRe = regexp.MustCompile(`^//\s*durlint:ignore\b(.*)$`)

// FileDirectives extracts every durlint:ignore directive in the file.
// Malformed directives (no analyzer, no reason) are returned with the
// missing fields empty so the driver can flag them.
func FileDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			rest := strings.TrimSpace(m[1])
			d := Directive{
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
				Raw:  c.Text,
			}
			if rest != "" {
				parts := strings.SplitN(rest, " ", 2)
				d.Analyzer = parts[0]
				if len(parts) == 2 {
					d.Reason = strings.TrimSpace(parts[1])
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
