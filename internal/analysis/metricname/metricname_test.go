package metricname_test

import (
	"testing"

	"durability/internal/analysis/analysistest"
	"durability/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, "testdata/src", metricname.Analyzer,
		"pkgbad",
		"pkgclean",
	)
}
