// Package pkgclean registers metrics exactly the way the real tree
// does; nothing here may be flagged. The unit-less histograms and the
// nanoseconds counter restate real registrations (tick_topup_roots,
// worker_busy_nanoseconds_total): the duration rule is about the word
// "duration", not about every conceivable unit.
package pkgclean

type Label struct{ Name, Value string }

type Counter struct{}

type Hist struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter               { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {}
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label)   {}
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Hist {
	return nil
}
func (r *Registry) RegisterHistogram(name, help string, h *Hist, labels ...Label) {}

func Register(reg *Registry) {
	reg.Counter("durserve_recoveries_total", "a well-formed counter")
	reg.CounterFunc("durserve_worker_busy_nanoseconds_total", "a unit other than duration-seconds", nil)
	reg.GaugeFunc("durserve_ready", "a bare gauge", nil)
	reg.GaugeFunc("durserve_plan_drift", "another bare gauge", nil)
	reg.Histogram("durserve_recovery_duration_seconds", "a duration with its unit", nil)
	reg.RegisterHistogram("durserve_tick_topup_roots", "a unit-less size histogram", nil)
	reg.CounterFunc("durserve_stage_duration_seconds_total", "unit stacked before the counter suffix", nil)
}

// helper is not a registration method: a same-named function elsewhere
// must not be inspected.
type other struct{}

func (other) Observe(name string) {}

func unrelated(o other) {
	o.Observe("whatever Case_THIS is")
}
