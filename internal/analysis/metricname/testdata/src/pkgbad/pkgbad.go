// Package pkgbad registers metrics that violate every naming rule the
// pass enforces. The Registry mirrors the telemetry registry's
// registration surface so the fixture stays stdlib-only.
package pkgbad

type Label struct{ Name, Value string }

type Counter struct{}

type Hist struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter               { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {}
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label)   {}
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Hist {
	return nil
}
func (r *Registry) RegisterHistogram(name, help string, h *Hist, labels ...Label) {}

func Register(reg *Registry) {
	reg.Counter("durserve_queries", "a counter without its suffix")                      // want `counter "durserve_queries" must end in _total`
	reg.CounterFunc("queries_total", "outside the namespace", nil)                       // want `metric name "queries_total" must carry the durserve_ namespace prefix`
	reg.GaugeFunc("durserve_live_total", "a gauge claiming the counter suffix", nil)     // want `gauge "durserve_live_total" must not end in _total`
	reg.Histogram("durserve_tick_duration", "a duration without its unit", nil)          // want `histogram "durserve_tick_duration" measures a duration and must end in _seconds`
	reg.CounterFunc("durserve_search_duration_millis_total", "wrong duration unit", nil) // want `counter "durserve_search_duration_millis_total" measures a duration and must end in _seconds`
	reg.RegisterHistogram("durserve_Tick_Seconds", "camel case", nil)                    // want `metric name "durserve_Tick_Seconds" is not lowercase snake_case`
}
