// Package metricname enforces Prometheus naming conventions on metric
// registrations.
//
// Every series this repository exports is registered through the
// telemetry registry's Counter/CounterFunc/GaugeFunc/Histogram/
// RegisterHistogram methods with a string-literal name, so the
// convention is statically checkable: names live in the durserve_
// namespace, counters end in _total, durations are measured in seconds
// and say so with a _seconds suffix, and nothing but a counter may
// claim _total. A rename that breaks convention breaks every dashboard
// and alert built on the series, which is why this is a lint pass and
// not a review note.
//
// The analyzer inspects any call whose method name is one of the
// registration methods and whose first argument is a string literal;
// names assembled at run time are out of scope (the repository has
// none — dynamic series use labels, as Prometheus intends).
package metricname

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"durability/internal/analysis"
)

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "enforce Prometheus metric naming (durserve_ prefix, _total counters, _seconds durations)",
	Run:  run,
}

// registerMethods maps registration method names to the kind of series
// they create.
var registerMethods = map[string]string{
	"Counter":           "counter",
	"CounterFunc":       "counter",
	"GaugeFunc":         "gauge",
	"Histogram":         "histogram",
	"RegisterHistogram": "histogram",
}

// validName is the Prometheus metric-name grammar, restricted to the
// lowercase snake_case subset this repository uses.
var validName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registerMethods[sel.Sel.Name]
			if !ok {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkName(pass, lit.Pos(), kind, name)
			return true
		})
	}
	return nil
}

// checkName applies the conventions to one registered series name.
func checkName(pass *analysis.Pass, pos token.Pos, kind, name string) {
	if !validName.MatchString(name) {
		pass.Reportf(pos, "metric name %q is not lowercase snake_case ([a-z][a-z0-9_]*)", name)
		return
	}
	if !strings.HasPrefix(name, "durserve_") {
		pass.Reportf(pos, "metric name %q must carry the durserve_ namespace prefix", name)
	}
	isTotal := strings.HasSuffix(name, "_total")
	if kind == "counter" && !isTotal {
		pass.Reportf(pos, "counter %q must end in _total", name)
	}
	if kind != "counter" && isTotal {
		pass.Reportf(pos, "%s %q must not end in _total (the suffix is reserved for counters)", kind, name)
	}
	// Durations are measured in seconds and must say so. Counters may
	// stack the unit before _total (x_duration_seconds_total).
	base := strings.TrimSuffix(name, "_total")
	if strings.Contains(base, "duration") && !strings.HasSuffix(base, "_seconds") {
		pass.Reportf(pos, "%s %q measures a duration and must end in _seconds", kind, name)
	}
}
