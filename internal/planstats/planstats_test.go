package planstats

import (
	"sync"
	"testing"
)

func key(model string) Key {
	return Key{Model: model, Observer: "value", BetaBucket: 12, Horizon: 250, Ratio: 3, Search: "greedy"}
}

func shape() Shape {
	return Shape{Boundaries: []float64{0.4, 0.7}, Ratio: 3}
}

// A booked delta must be readable back exactly: the accumulator adds
// plain float64s per level, so a single booking round-trips ==.
func TestBookExact(t *testing.T) {
	l := NewLedger()
	d := Delta{
		Land:  []float64{10, 6, 4, 0},
		Skip:  []float64{0, 1, 0, 0},
		Mu:    []float64{0, 3, 2, 0},
		Hits:  2,
		Roots: 10,
		Steps: 1234,
	}
	l.Book(key("gbm"), shape(), d)

	snap, ok := l.Snapshot(key("gbm"))
	if !ok {
		t.Fatal("booked key has no snapshot")
	}
	if snap.Runs != 1 || snap.Roots != 10 || snap.Steps != 1234 || snap.Hits != 2 {
		t.Fatalf("totals = runs %d roots %d steps %d hits %v", snap.Runs, snap.Roots, snap.Steps, snap.Hits)
	}
	if len(snap.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(snap.Levels))
	}
	l1 := snap.Levels[0]
	if l1.Attempted != 7 || l1.Crossed != 4 {
		t.Fatalf("level 1 attempted %v crossed %v, want 7, 4", l1.Attempted, l1.Crossed)
	}
	if l1.Observed == nil || *l1.Observed != 4.0/7.0 {
		t.Fatalf("level 1 observed = %v, want 4/7", l1.Observed)
	}
	if l1.Assumed != 1.0/3.0 {
		t.Fatalf("level 1 assumed = %v, want 1/3", l1.Assumed)
	}
	l2 := snap.Levels[1]
	if l2.Attempted != 4 || l2.Crossed != 2 {
		t.Fatalf("level 2 attempted %v crossed %v, want 4, 2", l2.Attempted, l2.Crossed)
	}
	if !snap.Observed || snap.MaxDrift <= 0 {
		t.Fatalf("observedAny %v maxDrift %v", snap.Observed, snap.MaxDrift)
	}
}

// A level never attempted reports nil Observed/Drift and contributes
// nothing to MaxDrift.
func TestUnattemptedLevelIsNull(t *testing.T) {
	l := NewLedger()
	l.Book(key("gbm"), shape(), Delta{
		Land: []float64{5, 5, 0, 0}, Skip: make([]float64, 4), Mu: make([]float64, 4),
		Roots: 5, Steps: 50,
	})
	snap, _ := l.Snapshot(key("gbm"))
	if snap.Levels[1].Observed != nil || snap.Levels[1].Drift != nil {
		t.Fatalf("unattempted level 2 reports observed %v drift %v", snap.Levels[1].Observed, snap.Levels[1].Drift)
	}
	if snap.Levels[0].Observed == nil {
		t.Fatal("attempted level 1 reports nil observed")
	}
}

// Per-level ratios shift the assumed probabilities: the crossing into
// level l is designed at 1/Ratios[l-1], the final crossing falls back
// to the uniform ratio.
func TestAssumedWithPerLevelRatios(t *testing.T) {
	l := NewLedger()
	sh := Shape{Boundaries: []float64{0.4, 0.7}, Ratio: 3, Ratios: []int{2, 5}}
	l.Book(key("gbm"), sh, Delta{
		Land: []float64{4, 4, 4, 0}, Skip: make([]float64, 4), Mu: []float64{0, 2, 2, 0},
		Roots: 4, Steps: 10,
	})
	snap, _ := l.Snapshot(key("gbm"))
	// Level 1's crossing lands in level 2: assumed 1/Ratios[1] = 1/5.
	if snap.Levels[0].Assumed != 0.2 {
		t.Fatalf("level 1 assumed = %v, want 0.2", snap.Levels[0].Assumed)
	}
	// Level 2's crossing lands at the target (no per-level entry):
	// assumed falls back to 1/Ratio.
	if snap.Levels[1].Assumed != 1.0/3.0 {
		t.Fatalf("level 2 assumed = %v, want 1/3", snap.Levels[1].Assumed)
	}
}

// A shape change resets the lineage: counters under the old plan are
// not comparable under the new one.
func TestShapeChangeResets(t *testing.T) {
	l := NewLedger()
	l.Book(key("gbm"), shape(), Delta{Land: []float64{8, 4, 2, 0}, Roots: 8, Steps: 100})
	fresh := Shape{Boundaries: []float64{0.5}, Ratio: 3}
	l.Book(key("gbm"), fresh, Delta{Land: []float64{3, 1, 0}, Roots: 3, Steps: 30})
	snap, _ := l.Snapshot(key("gbm"))
	if snap.Runs != 1 || snap.Roots != 3 || snap.Steps != 30 {
		t.Fatalf("after reset: runs %d roots %d steps %d, want 1, 3, 30", snap.Runs, snap.Roots, snap.Steps)
	}
	if len(snap.Boundaries) != 1 || snap.Boundaries[0] != 0.5 {
		t.Fatalf("after reset boundaries = %v", snap.Boundaries)
	}
}

// Snapshots lists keys in one canonical order regardless of booking
// order, and distinct keys never share an entry.
func TestSnapshotsSortedAndIsolated(t *testing.T) {
	l := NewLedger()
	l.Book(key("walk"), shape(), Delta{Land: []float64{2, 1, 0, 0}, Roots: 2, Steps: 20})
	l.Book(key("gbm"), shape(), Delta{Land: []float64{5, 3, 1, 0}, Roots: 5, Steps: 50})
	snaps := l.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Key.Model != "gbm" || snaps[1].Key.Model != "walk" {
		t.Fatalf("snapshot order = %s, %s", snaps[0].Key.Model, snaps[1].Key.Model)
	}
	if snaps[0].Roots != 5 || snaps[1].Roots != 2 {
		t.Fatalf("entries mixed: gbm roots %d, walk roots %d", snaps[0].Roots, snaps[1].Roots)
	}
}

// Concurrent bookings under distinct keys must keep integer totals
// exact per key (run with -race in CI).
func TestConcurrentBookingExactInts(t *testing.T) {
	l := NewLedger()
	const perKey = 200
	models := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for _, m := range models {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(m string) {
				defer wg.Done()
				for r := 0; r < perKey/4; r++ {
					l.Book(key(m), shape(), Delta{
						Land: []float64{1, 1, 0, 0}, Roots: 7, Steps: 11,
					})
				}
			}(m)
		}
	}
	wg.Wait()
	for _, m := range models {
		snap, ok := l.Snapshot(key(m))
		if !ok {
			t.Fatalf("key %s missing", m)
		}
		if snap.Runs != perKey || snap.Roots != perKey*7 || snap.Steps != perKey*11 {
			t.Fatalf("key %s: runs %d roots %d steps %d", m, snap.Runs, snap.Roots, snap.Steps)
		}
	}
}

// A nil ledger ignores everything, so wiring stays optional.
func TestNilLedger(t *testing.T) {
	var l *Ledger
	l.Book(key("gbm"), shape(), Delta{Roots: 1})
	if l.Len() != 0 || l.Snapshots() != nil {
		t.Fatal("nil ledger reported entries")
	}
	if _, ok := l.Snapshot(key("gbm")); ok {
		t.Fatal("nil ledger returned a snapshot")
	}
}
