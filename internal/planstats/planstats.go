// Package planstats is the per-plan crossing-statistics ledger behind
// plan-quality observability: every g-MLSS run books the level counters
// it already computed — per-level attempted/crossed counts, roots,
// steps — under the plan-cache key that selected its plan, so the
// serving layer can compare each cached plan's §5.2 search assumptions
// against the crossing probabilities live traffic actually exhibits.
//
// The ledger sits below every other package: internal/core imports
// internal/telemetry, so a package both of them (and serve, stream,
// durserve) can feed must be stdlib-only. Callers therefore pass plain
// float64 slices in core.Counters layout (index j of Land/Skip/Mu is
// level j, length m+1) rather than core types.
//
// Cost discipline matches telemetry.Histogram: the booking hot path is
// lock-free — per-level CAS float adds plus atomic integer adds — and
// scrapes never block bookings. Each booked delta is a whole run's
// aggregate, itself merged in root order by the sampler, so two
// identically driven servers book identical deltas in identical order
// and every non-duration ledger value stays byte-identical between
// them (the cluster backend ships per-shard counters inside ShardReply
// and the coordinator folds them in root order before booking, so
// cluster attribution is exact, not approximate).
//
// Drift semantics: at splittable level j (1 <= j <= m-1) the observed
// conditional crossing probability is (Mu[j]+Skip[j])/(Land[j]+Skip[j])
// — of everything that reached level j, the fraction that advanced to
// j+1. The search designs boundaries so that crossing into level l
// happens with probability ~1/ratio(l) (balanced growth: each arrival
// spawns ratio(l) offspring), so the assumed probability for the j→j+1
// crossing is 1/ratio(j+1), falling back to the uniform ratio past the
// last per-level entry. The entry probability (root start to its first
// level) has no designed counterpart and is excluded from drift.
// MaxDrift is the maximum |observed − assumed| over levels with at
// least one attempt; levels never attempted report a nil Observed.
package planstats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Key identifies one cached plan. It mirrors the serving layer's
// plan-cache key field for field (serve.PlanKey), restated here because
// serve sits above this package in the import order.
type Key struct {
	Model      string `json:"model"`
	Observer   string `json:"observer"`
	BetaBucket int    `json:"betaBucket"`
	Horizon    int    `json:"horizon"`
	Ratio      int    `json:"ratio"`
	Search     string `json:"search"`
	Start      int    `json:"start"`
	Set        string `json:"set,omitempty"`
}

// String renders a compact deterministic label, stable enough to key
// metric series and log lines.
func (k Key) String() string {
	return fmt.Sprintf("%s/%s bb=%d h=%d r=%d %s start=%d set=%s",
		k.Model, k.Observer, k.BetaBucket, k.Horizon, k.Ratio, k.Search, k.Start, k.Set)
}

// less orders keys lexicographically field by field, giving every
// snapshot listing one canonical order.
func (k Key) less(o Key) bool {
	if k.Model != o.Model {
		return k.Model < o.Model
	}
	if k.Observer != o.Observer {
		return k.Observer < o.Observer
	}
	if k.BetaBucket != o.BetaBucket {
		return k.BetaBucket < o.BetaBucket
	}
	if k.Horizon != o.Horizon {
		return k.Horizon < o.Horizon
	}
	if k.Ratio != o.Ratio {
		return k.Ratio < o.Ratio
	}
	if k.Search != o.Search {
		return k.Search < o.Search
	}
	if k.Start != o.Start {
		return k.Start < o.Start
	}
	return k.Set < o.Set
}

// Shape is the plan the statistics accumulate under: the interior
// boundaries plus the splitting ratios the sampler actually used.
// Counters booked under different shapes are not comparable (the same
// contract core.Plan.Equal states), so a shape change — re-search after
// invalidation, a replan — resets the entry.
type Shape struct {
	Boundaries []float64
	Ratio      int
	Ratios     []int
}

// Equal reports whether two shapes accumulate comparably: identical
// boundaries and splitting ratios.
func (s Shape) Equal(o Shape) bool {
	if len(s.Boundaries) != len(o.Boundaries) || s.Ratio != o.Ratio || len(s.Ratios) != len(o.Ratios) {
		return false
	}
	for i, b := range s.Boundaries {
		if b != o.Boundaries[i] {
			return false
		}
	}
	for i, r := range s.Ratios {
		if r != o.Ratios[i] {
			return false
		}
	}
	return true
}

// m is the number of level-advancement probabilities (the paper's m).
func (s Shape) m() int { return len(s.Boundaries) + 1 }

// Delta is one run's finalized counters in core.Counters layout: index
// j of Land/Skip/Mu is level j, slices are m+1 long. The slices are
// read, never retained.
type Delta struct {
	Land, Skip, Mu []float64
	Hits           float64
	Roots, Steps   int64
}

// entryState is the accumulator for one (key, shape) lineage. Floats
// accumulate as CAS'd float64 bits (the telemetry.Histogram idiom);
// integers are plain atomics.
type entryState struct {
	shape              Shape
	land, skip, mu     []atomic.Uint64 // float64 bits, index = level, len m+1
	hits               atomic.Uint64   // float64 bits
	runs, roots, steps atomic.Int64
}

func newEntryState(shape Shape) *entryState {
	n := shape.m() + 1
	return &entryState{
		shape: shape,
		land:  make([]atomic.Uint64, n),
		skip:  make([]atomic.Uint64, n),
		mu:    make([]atomic.Uint64, n),
	}
}

func addFloat(a *atomic.Uint64, v float64) {
	if v == 0 {
		return
	}
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// Entry holds one key's accumulator behind an atomically swappable
// state pointer, so a plan-shape change resets the lineage without a
// lock on the booking path.
type Entry struct {
	state atomic.Pointer[entryState]
}

// stateFor returns the accumulator for shape, resetting the entry when
// the cached plan's shape changed. A lost reset race simply books into
// whichever lineage won — both carry the new shape.
func (e *Entry) stateFor(shape Shape) *entryState {
	for {
		st := e.state.Load()
		if st != nil && st.shape.Equal(shape) {
			return st
		}
		fresh := newEntryState(shape)
		if e.state.CompareAndSwap(st, fresh) {
			return fresh
		}
	}
}

// OnBook observes one key's snapshot immediately after a booking — the
// drift-metrics bridge. Set it before the first booking; it runs on the
// booking goroutine, so keep it cheap.
type OnBook func(Key, Snapshot)

// Ledger maps plan keys to crossing-statistics entries. The map is
// RWMutex-guarded (bookings of an existing key take only the read
// lock); each entry's hot path is lock-free.
type Ledger struct {
	mu      sync.RWMutex
	entries map[Key]*Entry

	// OnBook, when non-nil, runs after every booking. Assign it during
	// wiring, before any booking.
	OnBook OnBook
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[Key]*Entry)}
}

func (l *Ledger) entry(key Key) *Entry {
	l.mu.RLock()
	e, ok := l.entries[key]
	l.mu.RUnlock()
	if ok {
		return e
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok = l.entries[key]; ok {
		return e
	}
	e = &Entry{}
	l.entries[key] = e
	return e
}

// Book folds one run's counters into the key's entry. A nil ledger
// books nothing, so optional observability needs no call-site checks.
func (l *Ledger) Book(key Key, shape Shape, d Delta) {
	if l == nil {
		return
	}
	e := l.entry(key)
	st := e.stateFor(shape)
	n := len(st.land)
	for j := 0; j < n && j < len(d.Land); j++ {
		addFloat(&st.land[j], d.Land[j])
	}
	for j := 0; j < n && j < len(d.Skip); j++ {
		addFloat(&st.skip[j], d.Skip[j])
	}
	for j := 0; j < n && j < len(d.Mu); j++ {
		addFloat(&st.mu[j], d.Mu[j])
	}
	addFloat(&st.hits, d.Hits)
	st.runs.Add(1)
	st.roots.Add(d.Roots)
	st.steps.Add(d.Steps)
	if l.OnBook != nil {
		l.OnBook(key, snapshotState(st))
	}
}

// LevelStat is one splittable level's observed-vs-assumed crossing
// statistics.
type LevelStat struct {
	// Level j covers the crossing from level j to j+1; Boundary is
	// beta_j, the boundary defining the level.
	Level    int     `json:"level"`
	Boundary float64 `json:"boundary"`
	// Attempted is everything that reached level j (landed there or
	// skipped past it); Crossed is the subset that advanced to j+1.
	Attempted float64 `json:"attempted"`
	Crossed   float64 `json:"crossed"`
	// Observed is Crossed/Attempted, nil when nothing ever attempted
	// this level; Assumed is the search's designed crossing probability
	// (1/ratio of the landing level).
	Observed *float64 `json:"observed"`
	Assumed  float64  `json:"assumed"`
	// Drift is |Observed − Assumed|, nil exactly when Observed is.
	Drift *float64 `json:"drift"`
}

// Snapshot is one key's point-in-time ledger view. Every field is a
// pure function of the booked deltas — no durations, no wall clock —
// so identically driven servers snapshot byte-identical values.
type Snapshot struct {
	Key        Key       `json:"key"`
	Boundaries []float64 `json:"boundaries"`
	Ratio      int       `json:"ratio"`
	Ratios     []int     `json:"ratios,omitempty"`

	Runs  int64   `json:"runs"`
	Roots int64   `json:"roots"`
	Steps int64   `json:"steps"`
	Hits  float64 `json:"hits"`

	Levels []LevelStat `json:"levels"`
	// MaxDrift is the largest per-level |observed − assumed| (0 when no
	// level was ever attempted); Observed reports whether any level has
	// attempts, i.e. whether MaxDrift means anything.
	MaxDrift float64 `json:"maxDrift"`
	Observed bool    `json:"observedAny"`
}

// assumedAt returns the designed crossing probability for the j→j+1
// crossing: arrivals into level l spawn ratio(l) offspring, so balanced
// growth wants the crossing into l to happen with probability
// 1/ratio(l). Per-level ratios index landing levels (Ratios[l-1] is
// level l's); past their end — including the final crossing into the
// target — the uniform ratio applies.
func assumedAt(shape Shape, j int) float64 {
	landing := j + 1
	r := shape.Ratio
	if landing-1 < len(shape.Ratios) && shape.Ratios[landing-1] > 0 {
		r = shape.Ratios[landing-1]
	}
	if r < 1 {
		r = 1
	}
	return 1 / float64(r)
}

func snapshotState(st *entryState) Snapshot {
	shape := st.shape
	m := shape.m()
	snap := Snapshot{
		Boundaries: append([]float64(nil), shape.Boundaries...),
		Ratio:      shape.Ratio,
		Ratios:     append([]int(nil), shape.Ratios...),
		Runs:       st.runs.Load(),
		Roots:      st.roots.Load(),
		Steps:      st.steps.Load(),
		Hits:       math.Float64frombits(st.hits.Load()),
		Levels:     make([]LevelStat, 0, m-1),
	}
	for j := 1; j < m; j++ {
		land := math.Float64frombits(st.land[j].Load())
		skip := math.Float64frombits(st.skip[j].Load())
		mu := math.Float64frombits(st.mu[j].Load())
		ls := LevelStat{
			Level:     j,
			Boundary:  shape.Boundaries[j-1],
			Attempted: land + skip,
			Crossed:   mu + skip,
			Assumed:   assumedAt(shape, j),
		}
		if ls.Attempted > 0 {
			obs := ls.Crossed / ls.Attempted
			drift := math.Abs(obs - ls.Assumed)
			ls.Observed, ls.Drift = &obs, &drift
			snap.Observed = true
			if drift > snap.MaxDrift {
				snap.MaxDrift = drift
			}
		}
		snap.Levels = append(snap.Levels, ls)
	}
	return snap
}

// Describe returns the per-level statistics of a never-run shape: every
// splittable level with its boundary and assumed crossing probability,
// nothing observed. Introspection endpoints use it for cached plans that
// have no ledger entry yet.
func Describe(shape Shape) []LevelStat {
	return snapshotState(newEntryState(shape)).Levels
}

// Snapshot returns the key's current view, or false when the key has
// never been booked.
func (l *Ledger) Snapshot(key Key) (Snapshot, bool) {
	if l == nil {
		return Snapshot{}, false
	}
	l.mu.RLock()
	e, ok := l.entries[key]
	l.mu.RUnlock()
	if !ok {
		return Snapshot{}, false
	}
	st := e.state.Load()
	if st == nil {
		return Snapshot{}, false
	}
	snap := snapshotState(st)
	snap.Key = key
	return snap, true
}

// Snapshots returns every booked key's view in canonical key order.
func (l *Ledger) Snapshots() []Snapshot {
	if l == nil {
		return nil
	}
	l.mu.RLock()
	keys := make([]Key, 0, len(l.entries))
	for k := range l.entries {
		keys = append(keys, k)
	}
	l.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	out := make([]Snapshot, 0, len(keys))
	for _, k := range keys {
		if snap, ok := l.Snapshot(k); ok {
			out = append(out, snap)
		}
	}
	return out
}

// Len reports how many keys have entries.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}
