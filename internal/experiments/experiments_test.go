package experiments

import (
	"context"
	"strings"
	"testing"

	"durability/internal/rng"
	"durability/internal/simdb"
)

// measureTau estimates a setting's answer with plain simulation.
func measureTau(t *testing.T, spec *Spec, class Class, n int) float64 {
	t.Helper()
	st := spec.Setting(class)
	hits := 0
	for i := 0; i < n; i++ {
		src := rng.NewStream(99, uint64(i))
		s := spec.Proc.Initial()
		for step := 1; step <= st.Horizon; step++ {
			spec.Proc.Step(s, step, src)
			if spec.Obs(s) >= st.Beta {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(n)
}

// Calibration guard: each class's prior must be within a factor of 4 of a
// quick measurement (Medium/Small only — tails are too slow to re-measure
// here; their priors were calibrated offline with 400k paths).
func TestTauPriorsRoughlyCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	for _, spec := range []*Spec{QueueSpec(), CPPSpec()} {
		for _, class := range []Class{Medium, Small} {
			st := spec.Setting(class)
			tau := measureTau(t, spec, class, 4000)
			if tau < st.TauPrior/4 || tau > st.TauPrior*4 {
				t.Errorf("%s/%s: measured tau %v, prior %v", spec.Name, class, tau, st.TauPrior)
			}
		}
	}
}

func TestSpecSettingPanicsOnMissingClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing class did not panic")
		}
	}()
	StockSpec().Setting(Rare)
}

func TestQualityStop(t *testing.T) {
	for _, class := range []Class{Medium, Small, Tiny, Rare} {
		rule := QualityStop(class, 1, 1000)
		if rule == nil {
			t.Fatalf("%s: nil rule", class)
		}
		if !strings.Contains(rule.String(), "budget") {
			t.Fatalf("%s: no budget cap in %v", class, rule)
		}
	}
	// Scale 0 defaults to 1.
	if QualityStop(Medium, 0, 10).String() == "" {
		t.Fatal("empty rule description")
	}
}

func TestBalancedPlanForCachesAndOrders(t *testing.T) {
	ctx := context.Background()
	spec := QueueSpec()
	p1, err := BalancedPlanFor(ctx, spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Boundaries) == 0 {
		t.Fatal("tiny plan has no boundaries")
	}
	p2, err := BalancedPlanFor(ctx, spec, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if &p1.Boundaries[0] != &p2.Boundaries[0] {
		t.Fatal("plan not cached")
	}
	for i := 1; i < len(p1.Boundaries); i++ {
		if p1.Boundaries[i] <= p1.Boundaries[i-1] {
			t.Fatalf("boundaries not increasing: %v", p1.Boundaries)
		}
	}
}

func TestAnswerTableSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := AnswerTable(ctx, QueueSpec(), []Class{Medium}, 2,
		RunOpts{Scale: 8, Cap: 300_000, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.String() == "" || rep.Markdown() == "" {
		t.Fatal("empty rendering")
	}
}

func TestEfficiencyFigureSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := EfficiencyFigure(ctx, CPPSpec(), []Class{Small},
		RunOpts{Scale: 6, Cap: 2_000_000, Seed: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestConvergenceFigureSmallScale(t *testing.T) {
	ctx := context.Background()
	srs, mlss, err := ConvergenceFigure(ctx, QueueSpec(), Small,
		RunOpts{Scale: 8, Cap: 400_000, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(srs) == 0 || len(mlss) == 0 {
		t.Fatal("no convergence points")
	}
	rep := ConvergenceReport(QueueSpec(), Small, srs, mlss)
	if len(rep.Rows) == 0 {
		t.Fatal("empty convergence report")
	}
}

func TestVolatileTableSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := VolatileTable(ctx, []*Spec{VolatileCPPSpec()}, 50_000, 2,
		RunOpts{Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 { // tiny and rare rows
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestRatioSweepSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := RatioSweep(ctx, QueueSpec(), Small, []int{1, 3}, 3,
		RunOpts{Scale: 8, Cap: 400_000, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestLevelSweepSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := LevelSweep(ctx, CPPSpec(), Small, []int{2, 3},
		RunOpts{Scale: 8, Cap: 400_000, Seed: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestGreedyFigureSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := GreedyFigure(ctx, QueueSpec(), []Class{Small}, false,
		RunOpts{Scale: 8, Cap: 600_000, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestInDBMSTableSmallScale(t *testing.T) {
	ctx := context.Background()
	rep, err := InDBMSTable(ctx, []Class{Medium},
		RunOpts{Scale: 8, Cap: 400_000, Seed: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 { // queue + cpp
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestStoreSpecModels(t *testing.T) {
	db := simdb.New()
	if err := StoreSpecModels(db); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"queue", "cpp"} {
		if _, err := db.Process(m); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

// The volatile specs must actually exhibit level skipping: value moves
// larger than the balanced plan's level gaps in a single step. This is
// the property Table 6 depends on — without it, s-MLSS would not be
// biased and the experiment would be vacuous.
func TestVolatileSpecsSkipLevels(t *testing.T) {
	ctx := context.Background()
	for _, spec := range []*Spec{VolatileCPPSpec(), VolatileQueueSpec()} {
		st := spec.Setting(Tiny)
		plan, err := BalancedPlanFor(ctx, spec, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Boundaries) < 2 {
			t.Fatalf("%s: balanced plan too coarse to skip: %v", spec.Name, plan.Boundaries)
		}
		// Smallest gap between consecutive boundaries (including the
		// implicit target boundary 1).
		minGap := 1 - plan.Boundaries[len(plan.Boundaries)-1]
		for i := 1; i < len(plan.Boundaries); i++ {
			if g := plan.Boundaries[i] - plan.Boundaries[i-1]; g < minGap {
				minGap = g
			}
		}
		src := rng.New(3)
		skips := 0
		for i := 0; i < 300 && skips == 0; i++ {
			s := spec.Proc.Initial()
			prev := spec.Obs(s) / st.Beta
			for step := 1; step <= st.Horizon; step++ {
				spec.Proc.Step(s, step, src)
				v := spec.Obs(s) / st.Beta
				// A single-step move larger than the smallest gap can
				// cross two boundaries at once (when it starts just
				// below the lower one).
				if v-prev > minGap*1.05 {
					skips++
					break
				}
				prev = v
			}
		}
		if skips == 0 {
			t.Fatalf("%s never produced a level-skipping jump (min gap %v)", spec.Name, minGap)
		}
	}
}

func TestStockSpecTrainsAndSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("stock model training is slow")
	}
	spec := StockSpec()
	src := rng.New(4)
	s := spec.Proc.Initial()
	if spec.Obs(s) != 1000 {
		t.Fatalf("initial price = %v", spec.Obs(s))
	}
	for i := 1; i <= 200; i++ {
		spec.Proc.Step(s, i, src)
	}
	if v := spec.Obs(s); v <= 0 {
		t.Fatalf("price after 200 steps = %v", v)
	}
	// The same spec instance is cached.
	if StockSpec() != spec {
		t.Fatal("stock spec not cached")
	}
}

func TestStockTauCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("stock calibration is slow")
	}
	spec := StockSpec()
	tau := measureTau(t, spec, Small, 1500)
	st := spec.Setting(Small)
	if tau < st.TauPrior/6 || tau > st.TauPrior*6 {
		t.Errorf("rnn/Small: measured tau %v vs prior %v — recalibrate Beta", tau, st.TauPrior)
	}
	t.Logf("rnn Small measured tau = %v (prior %v)", tau, st.TauPrior)
}
