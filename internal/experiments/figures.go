package experiments

import (
	"context"
	"fmt"
	"time"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/opt"
	"durability/internal/simdb"
	"durability/internal/stats"
)

// AnswerTable regenerates Tables 3 and 4 (and the answer columns of
// Table 5): SRS and MLSS answers, averaged over runs independent
// executions with empirical standard deviations, per query class. MLSS
// uses the class's balanced plan with the default ratio — the paper's
// default configuration.
func AnswerTable(ctx context.Context, spec *Spec, classes []Class, runs int, o RunOpts) (Report, error) {
	rep := Report{
		Title:  fmt.Sprintf("Answer comparison on %s model (%d runs, scale %.2g)", spec.Name, runs, o.Scale),
		Header: []string{"Query", "SRS", "MLSS", "SRS steps", "MLSS steps"},
	}
	for _, class := range classes {
		plan, err := BalancedPlanFor(ctx, spec, class)
		if err != nil {
			return rep, err
		}
		var srsAcc, mlssAcc, srsSteps, mlssSteps stats.Accumulator
		for i := 0; i < runs; i++ {
			ro := o
			ro.Seed = o.Seed + uint64(1000*i) + 1
			sres, err := RunSRS(ctx, spec, class, ro)
			if err != nil {
				return rep, err
			}
			mres, err := RunSMLSS(ctx, spec, class, plan, Ratio, ro)
			if err != nil {
				return rep, err
			}
			srsAcc.Add(sres.P)
			mlssAcc.Add(mres.P)
			srsSteps.Add(float64(sres.Steps))
			mlssSteps.Add(float64(mres.Steps))
		}
		rep.AddRow(string(class),
			pctPair(srsAcc.Mean(), srsAcc.StdDev()),
			pctPair(mlssAcc.Mean(), mlssAcc.StdDev()),
			fmt.Sprintf("%.3g", srsSteps.Mean()),
			fmt.Sprintf("%.3g", mlssSteps.Mean()))
	}
	return rep, nil
}

// EfficiencyFigure regenerates Figures 6 and 7 (and the cost columns of
// Table 5): total simulation steps and wall-clock time for SRS vs MLSS to
// reach the class's quality target.
func EfficiencyFigure(ctx context.Context, spec *Spec, classes []Class, o RunOpts) (Report, error) {
	rep := Report{
		Title:  fmt.Sprintf("Query efficiency on %s model (scale %.2g)", spec.Name, o.Scale),
		Header: []string{"Query", "SRS steps", "MLSS steps", "speedup", "SRS time", "MLSS time"},
	}
	for _, class := range classes {
		plan, err := BalancedPlanFor(ctx, spec, class)
		if err != nil {
			return rep, err
		}
		sres, err := RunSRS(ctx, spec, class, o)
		if err != nil {
			return rep, err
		}
		mres, err := RunSMLSS(ctx, spec, class, plan, Ratio, o)
		if err != nil {
			return rep, err
		}
		rep.AddRow(string(class),
			fmt.Sprintf("%d", sres.Steps),
			fmt.Sprintf("%d", mres.Steps),
			fmt.Sprintf("%.2fx", float64(sres.Steps)/float64(mres.Steps)),
			sres.Elapsed.Round(time.Millisecond).String(),
			mres.Elapsed.Round(time.Millisecond).String())
	}
	return rep, nil
}

// ConvergencePoint is one sample of estimate quality over cost.
type ConvergencePoint struct {
	Steps    int64
	Estimate float64
	Metric   float64 // CI half-width (relative) or relative error
}

// ConvergenceFigure regenerates one panel of Figure 8: the trajectory of
// the quality metric over simulation cost for SRS and MLSS on one query.
// The metric is the relative CI half-width for Medium/Small classes and
// the relative error for Tiny/Rare, matching the paper's panels.
func ConvergenceFigure(ctx context.Context, spec *Spec, class Class, o RunOpts) (srs, mlss []ConvergencePoint, err error) {
	plan, err := BalancedPlanFor(ctx, spec, class)
	if err != nil {
		return nil, nil, err
	}
	metric := func(r mc.Result) float64 {
		switch class {
		case Medium, Small:
			if r.P <= 0 {
				return 1
			}
			return stats.ZCritical(0.95) * r.StdErr() / r.P
		default:
			return r.RelErr()
		}
	}
	collect := func(dst *[]ConvergencePoint) func(mc.Result) {
		return func(r mc.Result) {
			*dst = append(*dst, ConvergencePoint{Steps: r.Steps, Estimate: r.P, Metric: metric(r)})
		}
	}
	ro := o
	ro.Trace = collect(&srs)
	if _, err := RunSRS(ctx, spec, class, ro); err != nil {
		return nil, nil, err
	}
	ro.Trace = collect(&mlss)
	if _, err := RunSMLSS(ctx, spec, class, plan, Ratio, ro); err != nil {
		return nil, nil, err
	}
	return srs, mlss, nil
}

// ConvergenceReport renders the Figure 8 panel as a table of checkpoints.
func ConvergenceReport(spec *Spec, class Class, srs, mlss []ConvergencePoint) Report {
	rep := Report{
		Title:  fmt.Sprintf("Convergence on %s/%s (quality metric over steps)", spec.Name, class),
		Header: []string{"series", "steps", "estimate", "metric"},
	}
	sample := func(name string, pts []ConvergencePoint) {
		if len(pts) == 0 {
			return
		}
		stride := len(pts)/8 + 1
		for i := 0; i < len(pts); i += stride {
			p := pts[i]
			rep.AddRow(name, fmt.Sprintf("%d", p.Steps), pct(p.Estimate), fmt.Sprintf("%.3g", p.Metric))
		}
		last := pts[len(pts)-1]
		rep.AddRow(name, fmt.Sprintf("%d", last.Steps), pct(last.Estimate), fmt.Sprintf("%.3g", last.Metric))
	}
	sample("srs", srs)
	sample("mlss", mlss)
	return rep
}

// VolatileTable regenerates Table 6: on level-skipping processes under a
// fixed per-run budget, SRS and g-MLSS agree while s-MLSS is biased low.
func VolatileTable(ctx context.Context, specs []*Spec, budget int64, runs int, o RunOpts) (Report, error) {
	rep := Report{
		Title:  fmt.Sprintf("Level-skipping estimates, fixed budget %d steps, %d runs", budget, runs),
		Header: []string{"Model/Query", "SRS", "s-MLSS (biased)", "g-MLSS"},
	}
	for _, spec := range specs {
		for _, st := range spec.Settings {
			plan, err := BalancedPlanFor(ctx, spec, st.Class)
			if err != nil {
				return rep, err
			}
			var srsAcc, sAcc, gAcc stats.Accumulator
			for i := 0; i < runs; i++ {
				ro := o
				ro.Seed = o.Seed + uint64(1000*i) + 13
				sres, err := RunSRSBudget(ctx, spec, st.Class, budget, ro)
				if err != nil {
					return rep, err
				}
				smres, err := RunSMLSSBudget(ctx, spec, st.Class, plan, Ratio, budget, ro)
				if err != nil {
					return rep, err
				}
				gres, err := RunGMLSSBudget(ctx, spec, st.Class, plan, Ratio, budget, ro)
				if err != nil {
					return rep, err
				}
				srsAcc.Add(sres.P)
				sAcc.Add(smres.P)
				gAcc.Add(gres.P)
			}
			rep.AddRow(fmt.Sprintf("%s/%s", spec.Name, st.Class),
				pctPair(srsAcc.Mean(), srsAcc.StdDev()),
				pctPair(sAcc.Mean(), sAcc.StdDev()),
				pctPair(gAcc.Mean(), gAcc.StdDev()))
		}
	}
	rep.AddNote("s-MLSS loses paths that jump over its watched level, biasing it low; g-MLSS books them via n_skip (§4).")
	return rep, nil
}

// BreakdownFigure regenerates Figure 9: total g-MLSS query time split into
// simulation and bootstrap-evaluation time, against the SRS baseline.
func BreakdownFigure(ctx context.Context, specs []*Spec, o RunOpts) (Report, error) {
	rep := Report{
		Title:  "g-MLSS time breakdown on volatile models",
		Header: []string{"Model/Query", "SRS time", "g-MLSS total", "simulate", "bootstrap", "steps SRS", "steps g-MLSS"},
	}
	for _, spec := range specs {
		for _, st := range spec.Settings {
			plan, err := BalancedPlanFor(ctx, spec, st.Class)
			if err != nil {
				return rep, err
			}
			sres, err := RunSRS(ctx, spec, st.Class, o)
			if err != nil {
				return rep, err
			}
			gres, err := RunGMLSS(ctx, spec, st.Class, plan, Ratio, o)
			if err != nil {
				return rep, err
			}
			rep.AddRow(fmt.Sprintf("%s/%s", spec.Name, st.Class),
				sres.Elapsed.Round(time.Millisecond).String(),
				gres.Elapsed.Round(time.Millisecond).String(),
				(gres.Elapsed - gres.VarTime).Round(time.Millisecond).String(),
				gres.VarTime.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", sres.Steps),
				fmt.Sprintf("%d", gres.Steps))
		}
	}
	return rep, nil
}

// RatioSweep regenerates Figures 10 and 11: total steps to the quality
// target as the splitting ratio varies, on a fixed balanced plan. Ratio 1
// is the SRS-equivalent baseline.
func RatioSweep(ctx context.Context, spec *Spec, class Class, ratios []int, levels int, o RunOpts) (Report, error) {
	rep := Report{
		Title:  fmt.Sprintf("Splitting-ratio sweep on %s/%s (%d levels)", spec.Name, class, levels),
		Header: []string{"ratio", "steps", "estimate"},
	}
	st := spec.Setting(class)
	prob := &opt.Problem{
		Proc:  spec.Proc,
		Query: coreQuery(spec, st),
		Ratio: Ratio,
		Seed:  78,
	}
	plan, _, err := opt.BalancedPlan(ctx, prob, st.TauPrior, levels, 400)
	if err != nil {
		return rep, err
	}
	for _, r := range ratios {
		res, err := RunSMLSS(ctx, spec, class, plan, r, o)
		if err != nil {
			return rep, err
		}
		rep.AddRow(fmt.Sprintf("%d", r), fmt.Sprintf("%d", res.Steps), pct(res.P))
	}
	rep.AddNote("plan boundaries: %v", plan.Boundaries)
	return rep, nil
}

// LevelSweep regenerates Figure 12: total steps to the quality target as
// the number of levels varies, at the default ratio, using balanced plans.
func LevelSweep(ctx context.Context, spec *Spec, class Class, levelCounts []int, o RunOpts) (Report, error) {
	rep := Report{
		Title:  fmt.Sprintf("Level-count sweep on %s/%s (ratio %d)", spec.Name, class, Ratio),
		Header: []string{"levels", "boundaries", "steps", "estimate"},
	}
	st := spec.Setting(class)
	for _, m := range levelCounts {
		prob := &opt.Problem{
			Proc:  spec.Proc,
			Query: coreQuery(spec, st),
			Ratio: Ratio,
			Seed:  79,
		}
		plan, _, err := opt.BalancedPlan(ctx, prob, st.TauPrior, m, 400)
		if err != nil {
			return rep, err
		}
		res, err := RunSMLSS(ctx, spec, class, plan, Ratio, o)
		if err != nil {
			return rep, err
		}
		rep.AddRow(fmt.Sprintf("%d", m), fmt.Sprintf("%d", len(plan.Boundaries)),
			fmt.Sprintf("%d", res.Steps), pct(res.P))
	}
	return rep, nil
}

// GreedyFigure regenerates Figure 13 (s-MLSS variant) or Figure 14
// (g-MLSS on volatile models): SRS vs pre-tuned balanced MLSS (search cost
// not charged) vs greedy-tuned MLSS (search cost charged separately).
func GreedyFigure(ctx context.Context, spec *Spec, classes []Class, general bool, o RunOpts) (Report, error) {
	kind := "s-MLSS"
	if general {
		kind = "g-MLSS"
	}
	rep := Report{
		Title:  fmt.Sprintf("Greedy level partitions with %s on %s model", kind, spec.Name),
		Header: []string{"Query", "SRS steps", "BAL steps", "Greedy steps", "search overhead", "greedy/SRS"},
	}
	for _, class := range classes {
		st := spec.Setting(class)
		sres, err := RunSRS(ctx, spec, class, o)
		if err != nil {
			return rep, err
		}
		balPlan, err := BalancedPlanFor(ctx, spec, class)
		if err != nil {
			return rep, err
		}
		run := func(plan core.Plan, ro RunOpts) (mc.Result, error) {
			if general {
				return RunGMLSS(ctx, spec, class, plan, Ratio, ro)
			}
			return RunSMLSS(ctx, spec, class, plan, Ratio, ro)
		}
		bres, err := run(balPlan, o)
		if err != nil {
			return rep, err
		}
		prob := &opt.Problem{
			Proc:    spec.Proc,
			Query:   coreQuery(spec, st),
			Ratio:   Ratio,
			Seed:    o.Seed + 55,
			Workers: o.Workers,
		}
		greedy, err := opt.Greedy(ctx, prob, opt.GreedyOptions{})
		if err != nil {
			return rep, err
		}
		gres, err := run(greedy.Plan, o)
		if err != nil {
			return rep, err
		}
		totalGreedy := gres.Steps + greedy.SearchSteps
		rep.AddRow(string(class),
			fmt.Sprintf("%d", sres.Steps),
			fmt.Sprintf("%d", bres.Steps),
			fmt.Sprintf("%d", totalGreedy),
			fmt.Sprintf("%d (%.0f%%)", greedy.SearchSteps, 100*float64(greedy.SearchSteps)/float64(totalGreedy)),
			fmt.Sprintf("%.2f", float64(totalGreedy)/float64(sres.Steps)))
	}
	rep.AddNote("BAL plans are pre-tuned balanced-growth partitions; their construction cost is not charged (paper §6.3).")
	return rep, nil
}

// InDBMSTable regenerates Table 7: SRS vs MLSS running entirely through
// the embedded model database's stored-procedure dispatch.
func InDBMSTable(ctx context.Context, classes []Class, o RunOpts) (Report, error) {
	rep := Report{
		Title:  "Query times inside the embedded model DB (simdb)",
		Header: []string{"Model", "Query", "SRS time", "MLSS time", "SRS steps", "MLSS steps"},
	}
	db := simdb.New()
	if err := StoreSpecModels(db); err != nil {
		return rep, err
	}
	for _, pair := range []struct {
		model string
		spec  *Spec
	}{{"queue", QueueSpec()}, {"cpp", CPPSpec()}} {
		for _, class := range classes {
			plan, err := BalancedPlanFor(ctx, pair.spec, class)
			if err != nil {
				return rep, err
			}
			sres, err := RunInDB(ctx, db, pair.model, pair.spec, class, simdb.MethodSRS, core.Plan{}, o)
			if err != nil {
				return rep, err
			}
			mres, err := RunInDB(ctx, db, pair.model, pair.spec, class, simdb.MethodSMLSS, plan, o)
			if err != nil {
				return rep, err
			}
			rep.AddRow(pair.model, string(class),
				sres.Elapsed.Round(time.Millisecond).String(),
				mres.Elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", sres.Steps),
				fmt.Sprintf("%d", mres.Steps))
		}
	}
	return rep, nil
}
