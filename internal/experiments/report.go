package experiments

import (
	"fmt"
	"strings"
)

// Report is a printable table: the textual equivalent of one of the
// paper's tables or figure panels.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row of cells.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form footnote.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report with aligned columns.
func (r Report) String() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteString("\n")
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavoured markdown table, used
// when writing EXPERIMENTS.md.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// pct formats a probability as a percentage.
func pct(p float64) string { return fmt.Sprintf("%.4g%%", 100*p) }

// pctPair formats mean ± standard deviation percentages.
func pctPair(mean, std float64) string {
	return fmt.Sprintf("%.4g%% ± %.2g%%", 100*mean, 100*std)
}
