package experiments

import (
	"context"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/simdb"
)

// RunOpts parameterises one sampler execution.
type RunOpts struct {
	Scale   float64 // quality-target loosening (1 = paper fidelity)
	Cap     int64   // hard step budget (0 = 2e9)
	Seed    uint64
	Workers int
	Trace   func(mc.Result)
}

func (o RunOpts) cap() int64 {
	if o.Cap <= 0 {
		return 2_000_000_000
	}
	return o.Cap
}

// coreQuery builds the MLSS query for a setting.
func coreQuery(spec *Spec, st Setting) core.Query {
	return core.Query{Value: core.ThresholdValue(spec.Obs, st.Beta), Horizon: st.Horizon}
}

// RunSRS answers the class's query with simple random sampling at the
// class's quality target.
func RunSRS(ctx context.Context, spec *Spec, class Class, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	s := &mc.SRS{
		Proc:    spec.Proc,
		Query:   mc.Query{Cond: mc.Threshold(spec.Obs, st.Beta), Horizon: st.Horizon},
		Stop:    QualityStop(class, o.Scale, o.cap()),
		Seed:    o.Seed,
		Workers: o.Workers,
		Trace:   o.Trace,
	}
	return s.Run(ctx)
}

// RunSRSBudget answers with SRS under a fixed step budget (Table 6).
func RunSRSBudget(ctx context.Context, spec *Spec, class Class, budget int64, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	s := &mc.SRS{
		Proc:    spec.Proc,
		Query:   mc.Query{Cond: mc.Threshold(spec.Obs, st.Beta), Horizon: st.Horizon},
		Stop:    mc.Budget{Steps: budget},
		Seed:    o.Seed,
		Workers: o.Workers,
	}
	return s.Run(ctx)
}

// RunSMLSS answers with simple MLSS on the given plan at the class's
// quality target.
func RunSMLSS(ctx context.Context, spec *Spec, class Class, plan core.Plan, ratio int, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	s := &core.SMLSS{
		Proc:    spec.Proc,
		Query:   coreQuery(spec, st),
		Plan:    plan,
		Ratio:   ratio,
		Stop:    QualityStop(class, o.Scale, o.cap()),
		Seed:    o.Seed,
		Workers: o.Workers,
		Trace:   o.Trace,
	}
	return s.Run(ctx)
}

// RunSMLSSBudget answers with s-MLSS under a fixed step budget.
func RunSMLSSBudget(ctx context.Context, spec *Spec, class Class, plan core.Plan, ratio int, budget int64, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	s := &core.SMLSS{
		Proc:    spec.Proc,
		Query:   coreQuery(spec, st),
		Plan:    plan,
		Ratio:   ratio,
		Stop:    mc.Budget{Steps: budget},
		Seed:    o.Seed,
		Workers: o.Workers,
	}
	return s.Run(ctx)
}

// RunGMLSS answers with general MLSS (bootstrap variance) on the given
// plan at the class's quality target.
func RunGMLSS(ctx context.Context, spec *Spec, class Class, plan core.Plan, ratio int, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	g := &core.GMLSS{
		Proc:    spec.Proc,
		Query:   coreQuery(spec, st),
		Plan:    plan,
		Ratio:   ratio,
		Stop:    QualityStop(class, o.Scale, o.cap()),
		Seed:    o.Seed,
		Workers: o.Workers,
		Trace:   o.Trace,
	}
	return g.Run(ctx)
}

// RunGMLSSBudget answers with g-MLSS under a fixed step budget.
func RunGMLSSBudget(ctx context.Context, spec *Spec, class Class, plan core.Plan, ratio int, budget int64, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	g := &core.GMLSS{
		Proc:    spec.Proc,
		Query:   coreQuery(spec, st),
		Plan:    plan,
		Ratio:   ratio,
		Stop:    mc.Budget{Steps: budget},
		Seed:    o.Seed,
		Workers: o.Workers,
	}
	return g.Run(ctx)
}

// StoreSpecModels loads the queue and CPP workloads into a fresh model
// database for the in-DBMS experiment (Table 7).
func StoreSpecModels(db *simdb.DB) error {
	if err := db.StoreModel("queue", "queue", map[string]float64{
		"lambda": 0.5, "mu1": 2, "mu2": 2,
	}); err != nil {
		return err
	}
	return db.StoreModel("cpp", "cpp", map[string]float64{
		"u": 15, "c": 6.0, "lambda": 0.8, "claim_lo": 5, "claim_hi": 10,
	})
}

// RunInDB answers a class's query through the embedded model database's
// stored-procedure path (every simulator invocation dispatches through the
// catalog), with the given method.
func RunInDB(ctx context.Context, db *simdb.DB, model string, spec *Spec, class Class, method simdb.Method, plan core.Plan, o RunOpts) (mc.Result, error) {
	st := spec.Setting(class)
	field := "q2"
	if model == "cpp" {
		field = "u"
	}
	return db.RunQuery(ctx, simdb.QuerySpec{
		Model:   model,
		Field:   field,
		Beta:    st.Beta,
		Horizon: st.Horizon,
		Method:  method,
		Plan:    plan,
		Ratio:   Ratio,
		Stop:    QualityStop(class, o.Scale, o.cap()),
		Seed:    o.Seed,
		Workers: o.Workers,
	})
}
