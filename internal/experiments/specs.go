// Package experiments defines the paper's evaluation workloads (§6) and
// the runners that regenerate every table and figure. It is shared by
// cmd/experiments (full-scale runs, EXPERIMENTS.md data) and the
// repository-root benchmarks (scaled-down testing.B harnesses).
//
// Query settings follow Table 2 of the paper with thresholds recalibrated
// to this repository's model dynamics so that each query class lands in
// the paper's answer-probability band (Medium ~15-20%, Small ~5%,
// Tiny ~0.1-0.3%, Rare ~0.03%); the calibration is documented in
// EXPERIMENTS.md. Everything else — horizons, volatile impulse design,
// quality targets (1% relative CI at 95% for Medium/Small, 10% relative
// error for Tiny/Rare), splitting ratio 3, balanced-growth plans — follows
// the paper.
package experiments

import (
	"context"
	"sync"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/neural"
	"durability/internal/opt"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

// Class is a query-difficulty class from Table 2.
type Class string

// Query classes.
const (
	Medium Class = "Medium"
	Small  Class = "Small"
	Tiny   Class = "Tiny"
	Rare   Class = "Rare"
)

// Setting is one durability query from Table 2: a model, a horizon, a
// threshold, and the class's quality target.
type Setting struct {
	Class    Class
	Horizon  int
	Beta     float64
	TauPrior float64 // calibrated answer magnitude; used for balanced plans and REs
	Levels   int     // balanced-plan level count for this class
}

// Spec is one evaluation model with its query settings.
type Spec struct {
	Name     string
	Proc     stochastic.Process
	Obs      stochastic.Observer
	Settings []Setting
}

// Setting returns the spec's setting for a class; it panics for classes
// the spec does not define (mirrors the paper: the RNN model only has
// Small and Tiny).
func (s *Spec) Setting(c Class) Setting {
	for _, st := range s.Settings {
		if st.Class == c {
			return st
		}
	}
	panic("experiments: " + s.Name + " has no class " + string(c))
}

// Ratio is the default splitting ratio used throughout §6 (r = 3).
const Ratio = 3

// QueueSpec is the tandem-queue workload: criticality (rho = 1) makes
// large queue-2 backlogs rare in exactly the paper's probability bands.
func QueueSpec() *Spec {
	return &Spec{
		Name: "queue",
		Proc: stochastic.NewTandemQueue(0.5, 2, 2),
		Obs:  stochastic.Queue2Len,
		Settings: []Setting{
			{Class: Medium, Horizon: 500, Beta: 28, TauPrior: 0.18, Levels: 2},
			{Class: Small, Horizon: 500, Beta: 37, TauPrior: 0.05, Levels: 3},
			{Class: Tiny, Horizon: 500, Beta: 58, TauPrior: 1.2e-3, Levels: 5},
			{Class: Rare, Horizon: 500, Beta: 64, TauPrior: 3.5e-4, Levels: 6},
		},
	}
}

// CPPSpec is the compound-Poisson risk workload with premium balancing the
// expected claims (driftless surplus), the regime in which the paper's
// thresholds are attainable.
func CPPSpec() *Spec {
	return &Spec{
		Name: "cpp",
		Proc: stochastic.NewCompoundPoisson(15, 6.0, 0.8, 5, 10),
		Obs:  stochastic.ScalarValue,
		Settings: []Setting{
			{Class: Medium, Horizon: 500, Beta: 225, TauPrior: 0.16, Levels: 2},
			{Class: Small, Horizon: 500, Beta: 300, TauPrior: 0.055, Levels: 3},
			{Class: Tiny, Horizon: 500, Beta: 450, TauPrior: 3.2e-3, Levels: 5},
			{Class: Rare, Horizon: 500, Beta: 550, TauPrior: 2.2e-4, Levels: 6},
		},
	}
}

// VolatileQueueSpec adds impulse jumps (+15 customers with probability
// 0.015 per step once t > 0.8s) so sample paths skip levels — §6.2's
// Volatile Queue. The impulse is large relative to the level gaps of the
// balanced plans below (15/beta > 0.14), which is what makes s-MLSS lose
// paths.
func VolatileQueueSpec() *Spec {
	q := stochastic.NewTandemQueue(0.5, 2, 2)
	q.ImpulseProb, q.ImpulseSize, q.ImpulseAfter = 0.015, 15, 400
	return &Spec{
		Name: "volatile-queue",
		Proc: q,
		Obs:  stochastic.Queue2Len,
		Settings: []Setting{
			{Class: Tiny, Horizon: 500, Beta: 85, TauPrior: 2.1e-2, Levels: 6},
			{Class: Rare, Horizon: 500, Beta: 105, TauPrior: 3.5e-3, Levels: 7},
		},
	}
}

// VolatileCPPSpec adds impulse jumps (+200 with probability 0.005 per step
// once t > 0.8s) — §6.2's Volatile CPP.
func VolatileCPPSpec() *Spec {
	c := stochastic.NewCompoundPoisson(15, 6.0, 0.8, 5, 10)
	c.ImpulseProb, c.ImpulseSize, c.ImpulseAfter = 0.005, 200, 400
	return &Spec{
		Name: "volatile-cpp",
		Proc: c,
		Obs:  stochastic.ScalarValue,
		Settings: []Setting{
			{Class: Tiny, Horizon: 500, Beta: 700, TauPrior: 9.5e-3, Levels: 4},
			{Class: Rare, Horizon: 500, Beta: 1000, TauPrior: 4.5e-4, Levels: 5},
		},
	}
}

var (
	stockOnce sync.Once
	stockSpec *Spec
)

// StockSpec is the LSTM-MDN stock workload of §6 model (3). The model is
// trained once per process, deterministically, on a synthetic 5-year
// price series (the stand-in for the paper's Google data; DESIGN.md §5).
// Training takes a few seconds; every caller shares the trained model.
func StockSpec() *Spec {
	stockOnce.Do(func() {
		gbm := &stochastic.GBM{S0: 1000, Mu: 0.0004, Sigma: 0.02}
		series := gbm.SeriesWithRegimes(1250, rng.New(20150101))
		model := neural.NewModel(neural.Config{
			Hidden: 16, Layers: 2, Mixtures: 3, SeqLen: 40,
		}, 7)
		if _, err := model.Train(series, 6); err != nil {
			panic("experiments: stock model training failed: " + err.Error())
		}
		proc := neural.NewStockProcess(model, 1000, 50)
		stockSpec = &Spec{
			Name: "rnn",
			Proc: proc,
			Obs:  neural.Price,
			Settings: []Setting{
				{Class: Small, Horizon: 200, Beta: 1550, TauPrior: 4.5e-2, Levels: 3},
				{Class: Tiny, Horizon: 200, Beta: 1900, TauPrior: 3e-3, Levels: 5},
			},
		}
	})
	return stockSpec
}

// planCache memoises balanced plans (they are deterministic but cost pilot
// simulations to construct).
var (
	planMu    sync.Mutex
	planCache = map[string]core.Plan{}
)

// BalancedPlanFor returns the MLSS-BAL plan for a spec's query class: a
// balanced-growth partition with the class's level count, reconstructed
// once per process via the staged pilot search (see internal/opt). This
// plays the role of the paper's manually tuned plans; its construction
// cost is *not* charged to MLSS-BAL runs, matching the paper's accounting.
func BalancedPlanFor(ctx context.Context, spec *Spec, class Class) (core.Plan, error) {
	key := spec.Name + "/" + string(class)
	planMu.Lock()
	if p, ok := planCache[key]; ok {
		planMu.Unlock()
		return p, nil
	}
	planMu.Unlock()

	st := spec.Setting(class)
	prob := &opt.Problem{
		Proc:  spec.Proc,
		Query: core.Query{Value: core.ThresholdValue(spec.Obs, st.Beta), Horizon: st.Horizon},
		Ratio: Ratio,
		Seed:  77,
	}
	plan, _, err := opt.BalancedPlan(ctx, prob, st.TauPrior, st.Levels, 400)
	if err != nil {
		return core.Plan{}, err
	}
	planMu.Lock()
	planCache[key] = plan
	planMu.Unlock()
	return plan, nil
}

// QualityStop returns the paper's stopping rule for a class, loosened by
// scale (scale 1 reproduces the paper: 1% relative CI at 95% confidence
// for Medium/Small, 10% relative error for Tiny/Rare; scale 3 gives 3%
// CI / 30% RE for cheap benchmark runs). cap is a hard step budget.
func QualityStop(class Class, scale float64, cap int64) mc.StopRule {
	if scale <= 0 {
		scale = 1
	}
	var quality mc.StopRule
	switch class {
	case Medium, Small:
		quality = mc.CITarget{Half: 0.01 * scale, Confidence: 0.95, Relative: true}
	default:
		quality = mc.RETarget{Target: 0.10 * scale}
	}
	return mc.Any{quality, mc.Budget{Steps: cap}}
}
