package is

import (
	"context"
	"math"
	"testing"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// rareWalk is a driftless walk whose hitting probability at beta within
// the horizon is ~1.4e-4 (3.8 sigma of the terminal distribution).
func rareWalk() (*stochastic.RandomWalk, float64, int) {
	return &stochastic.RandomWalk{Start: 0, Drift: 0, Sigma: 1}, 38.0, 100
}

// srsReference estimates the same probability with plain Monte Carlo.
func srsReference(t *testing.T, budget int64) float64 {
	t.Helper()
	walk, beta, horizon := rareWalk()
	s := &mc.SRS{
		Proc:    walk,
		Query:   mc.Query{Cond: mc.Threshold(stochastic.ScalarValue, beta), Horizon: horizon},
		Stop:    mc.Budget{Steps: budget},
		Seed:    99,
		Workers: 8,
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res.P
}

func TestWalkISValidation(t *testing.T) {
	ctx := context.Background()
	walk, beta, horizon := rareWalk()
	cases := []*WalkIS{
		{Beta: beta, Horizon: horizon, Stop: mc.Budget{Steps: 1}},                                         // nil walk
		{Walk: &stochastic.RandomWalk{Sigma: 0}, Beta: beta, Horizon: horizon, Stop: mc.Budget{Steps: 1}}, // sigma 0
		{Walk: walk, Beta: beta, Horizon: 0, Stop: mc.Budget{Steps: 1}},                                   // horizon 0
		{Walk: walk, Beta: beta, Horizon: horizon},                                                        // no stop rule
	}
	for i, w := range cases {
		if _, err := w.Run(ctx); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestZeroTiltMatchesSRS(t *testing.T) {
	// theta = 0 is exactly SRS: weights are 0/1.
	walk := &stochastic.RandomWalk{Start: 0, Drift: 0, Sigma: 1}
	w := &WalkIS{
		Walk: walk, Beta: 8, Horizon: 100, Theta: 0,
		Stop: mc.Budget{Steps: 2_000_000}, Seed: 1,
	}
	res, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Hits)/float64(res.Paths)-res.P) > 1e-12 {
		t.Fatalf("zero-tilt estimate %v is not hits/paths", res.P)
	}
	// ~0.21 analytic-ish; just require a sane common-event estimate.
	if res.P < 0.1 || res.P > 0.4 {
		t.Fatalf("estimate %v out of plausible range", res.P)
	}
}

func TestTiltedISUnbiased(t *testing.T) {
	walk, beta, horizon := rareWalk()
	w := &WalkIS{
		Walk: walk, Beta: beta, Horizon: horizon,
		Theta: 0.38, // near-optimal: drift*T reaches beta
		Stop:  mc.Budget{Steps: 3_000_000}, Seed: 2,
	}
	res, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref := srsReference(t, 60_000_000)
	if ref == 0 {
		t.Skip("reference saw no hits; enlarge budget")
	}
	if math.Abs(res.P-ref) > 0.5*ref {
		t.Fatalf("IS estimate %v vs SRS reference %v", res.P, ref)
	}
	if res.Variance <= 0 {
		t.Fatal("no variance estimate")
	}
}

func TestISBeatsSRSOnRareEvent(t *testing.T) {
	walk, beta, horizon := rareWalk()
	target := mc.Any{mc.RETarget{Target: 0.2}, mc.Budget{Steps: 500_000_000}}
	w := &WalkIS{Walk: walk, Beta: beta, Horizon: horizon, Theta: 0.38, Stop: target, Seed: 3}
	res, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := &mc.SRS{
		Proc:    walk,
		Query:   mc.Query{Cond: mc.Threshold(stochastic.ScalarValue, beta), Horizon: horizon},
		Stop:    target,
		Seed:    4,
		Workers: 8,
	}
	sres, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps*5 > sres.Steps {
		t.Fatalf("IS %d steps vs SRS %d — expected >5x advantage", res.Steps, sres.Steps)
	}
	t.Logf("rare walk: IS %d steps vs SRS %d (%.0fx)", res.Steps, sres.Steps, float64(sres.Steps)/float64(res.Steps))
}

func TestCrossEntropyFindsPositiveTilt(t *testing.T) {
	walk, beta, horizon := rareWalk()
	theta, cost, err := CrossEntropyTilt(walk, beta, horizon, 4, 400, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("no pilot cost recorded")
	}
	// The optimal tilt pushes the drift toward beta/horizon = 0.38.
	if theta < 0.15 || theta > 0.8 {
		t.Fatalf("CE tilt = %v, want roughly 0.2-0.6", theta)
	}
	// The CE-selected tilt must produce a working sampler.
	w := &WalkIS{Walk: walk, Beta: beta, Horizon: horizon, Theta: theta,
		Stop: mc.Budget{Steps: 2_000_000}, Seed: 6}
	res, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 {
		t.Fatal("CE-tilted sampler saw no weighted hits")
	}
}

func TestCrossEntropyValidation(t *testing.T) {
	walk, beta, horizon := rareWalk()
	if _, _, err := CrossEntropyTilt(nil, beta, horizon, 3, 100, 0.1, 1); err == nil {
		t.Error("nil walk accepted")
	}
	if _, _, err := CrossEntropyTilt(walk, beta, horizon, 3, 100, 0, 1); err == nil {
		t.Error("zero elite accepted")
	}
	if _, _, err := CrossEntropyTilt(walk, beta, horizon, 0, 100, 0.1, 1); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, _, err := CrossEntropyTilt(walk, beta, horizon, 3, 5, 0.1, 1); err == nil {
		t.Error("too few pilots accepted")
	}
}

func TestISContextCancel(t *testing.T) {
	walk, beta, horizon := rareWalk()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := &WalkIS{Walk: walk, Beta: beta, Horizon: horizon, Theta: 0.3,
		Stop: mc.Budget{Steps: 1 << 60}, Seed: 7}
	if _, err := w.Run(ctx); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
