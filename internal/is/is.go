// Package is implements the importance-sampling baseline of §2.2 of the
// paper: exponential tilting for Gaussian-increment processes, with the
// cross-entropy (CE) method for choosing the tilt automatically.
//
// The paper's argument for MLSS over IS is that IS needs white-box access
// to the model — the sampling distribution must be modified, and the
// likelihood ratio computed, which is impossible for black-box step
// simulators. This package makes that argument concrete: it is only
// implemented for the random-walk model, exactly because that is the kind
// of model whose internals IS can reach. The ablation benchmarks compare
// SRS, IS and MLSS on the walk: IS and MLSS both beat SRS by an order of
// magnitude on rare events, while only MLSS also runs against the queue,
// the CPP and the neural model.
package is

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stats"
	"durability/internal/stochastic"
)

// WalkIS answers the durability query "walk reaches Beta within Horizon"
// by sampling from an exponentially tilted walk and reweighting with the
// per-step likelihood ratio.
//
// Under tilt theta, increments are drawn from N(mu + theta*sigma^2,
// sigma^2); each simulated increment d contributes the likelihood ratio
// exp(-theta*(d - mu) + theta^2 sigma^2 / 2). A path stops at its hitting
// time, so the ratio accumulates only over simulated steps (sequential
// importance sampling with optional stopping).
type WalkIS struct {
	Walk    *stochastic.RandomWalk
	Beta    float64
	Horizon int
	Theta   float64 // tilt parameter; 0 degenerates to SRS

	Stop    mc.StopRule
	Seed    uint64
	Workers int
	Batch   int
}

func (w *WalkIS) validate() error {
	if w.Walk == nil {
		return errors.New("is: nil walk")
	}
	if w.Walk.Sigma <= 0 {
		return fmt.Errorf("is: walk sigma %v must be positive", w.Walk.Sigma)
	}
	if w.Horizon <= 0 {
		return fmt.Errorf("is: horizon %d must be positive", w.Horizon)
	}
	if w.Stop == nil {
		return errors.New("is: requires a stop rule")
	}
	return nil
}

// runPath simulates one tilted path, returning its weighted label and cost.
func (w *WalkIS) runPath(idx int64) (weight float64, steps int64) {
	src := rng.NewStream(w.Seed, uint64(idx))
	sigma2 := w.Walk.Sigma * w.Walk.Sigma
	tiltedDrift := w.Walk.Drift + w.Theta*sigma2
	x := w.Walk.Start
	logLR := 0.0
	for t := 1; t <= w.Horizon; t++ {
		d := tiltedDrift + w.Walk.Sigma*src.Norm()
		x += d
		steps++
		logLR += -w.Theta*(d-w.Walk.Drift) + 0.5*w.Theta*w.Theta*sigma2
		if x >= w.Beta {
			return math.Exp(logLR), steps
		}
	}
	return 0, steps
}

// Run executes the sampler until the stop rule fires.
func (w *WalkIS) Run(ctx context.Context) (mc.Result, error) {
	if err := w.validate(); err != nil {
		return mc.Result{}, err
	}
	batch := w.Batch
	if batch <= 0 {
		batch = 256
	}
	start := time.Now()
	var res mc.Result
	var acc stats.Accumulator
	next := int64(0)
	for {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		for i := 0; i < batch; i++ {
			weight, steps := w.runPath(next)
			next++
			res.Steps += steps
			if weight > 0 {
				res.Hits++
			}
			acc.Add(weight)
		}
		res.Paths = acc.N()
		res.P = acc.Mean()
		res.Variance = acc.Variance() / float64(acc.N())
		res.Elapsed = time.Since(start)
		if w.Stop.Done(res) {
			return res, nil
		}
	}
}

// CrossEntropyTilt chooses the tilt parameter by the cross-entropy
// method (§2.2 cites CE as the standard IS optimiser): in each round,
// simulate pilot paths under the current tilt, take the elite fraction by
// maximum value reached, and refit theta so the tilted drift matches the
// elite paths' average increment. Returns the selected tilt and the pilot
// cost in simulator steps.
func CrossEntropyTilt(walk *stochastic.RandomWalk, beta float64, horizon, rounds, pilots int, elite float64, seed uint64) (theta float64, cost int64, err error) {
	if walk == nil || walk.Sigma <= 0 {
		return 0, 0, errors.New("is: invalid walk")
	}
	if elite <= 0 || elite >= 1 {
		return 0, 0, fmt.Errorf("is: elite fraction %v must be in (0,1)", elite)
	}
	if rounds < 1 || pilots < 10 {
		return 0, 0, fmt.Errorf("is: need at least 1 round and 10 pilots")
	}
	sigma2 := walk.Sigma * walk.Sigma
	for round := 0; round < rounds; round++ {
		type pilot struct {
			score   float64 // maximum value reached
			meanInc float64 // average per-step increment
		}
		ps := make([]pilot, pilots)
		tiltedDrift := walk.Drift + theta*sigma2
		for i := range ps {
			src := rng.NewStream(seed, uint64(round)<<32|uint64(i))
			x := walk.Start
			best := x
			sum := 0.0
			n := 0
			for t := 1; t <= horizon; t++ {
				d := tiltedDrift + walk.Sigma*src.Norm()
				x += d
				sum += d
				n++
				cost++
				if x > best {
					best = x
				}
				if x >= beta {
					break
				}
			}
			ps[i] = pilot{score: best, meanInc: sum / float64(n)}
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a].score > ps[b].score })
		cut := int(elite * float64(pilots))
		if cut < 1 {
			cut = 1
		}
		eliteMean := 0.0
		for _, p := range ps[:cut] {
			eliteMean += p.meanInc
		}
		eliteMean /= float64(cut)
		theta = (eliteMean - walk.Drift) / sigma2
	}
	return theta, cost, nil
}
