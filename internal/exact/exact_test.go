package exact

import (
	"math"
	"testing"

	"durability/internal/rng"
)

func TestGamblersRuinFair(t *testing.T) {
	got, err := GamblersRuin(0.5, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("fair ruin = %v, want 0.3", got)
	}
}

func TestGamblersRuinBiased(t *testing.T) {
	// p=0.6, a=2, b=5: (1 - (2/3)^2) / (1 - (2/3)^5)
	r := 2.0 / 3.0
	want := (1 - r*r) / (1 - math.Pow(r, 5))
	got, err := GamblersRuin(0.6, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("biased ruin = %v, want %v", got, want)
	}
}

func TestGamblersRuinValidation(t *testing.T) {
	cases := []struct {
		p    float64
		a, b int
	}{{0, 1, 2}, {1, 1, 2}, {0.5, 0, 2}, {0.5, 3, 3}, {0.5, 5, 2}}
	for _, c := range cases {
		if _, err := GamblersRuin(c.p, c.a, c.b); err == nil {
			t.Errorf("GamblersRuin(%v,%d,%d) accepted", c.p, c.a, c.b)
		}
	}
}

func TestGamblersRuinMatchesLatticeDP(t *testing.T) {
	// With a huge horizon the finite-horizon DP converges to the ruin
	// probability conditioned on absorption at either end; emulate the
	// two-sided game by flooring at 0 being absorbing — instead compare
	// against simulation of the actual two-boundary game.
	p := 0.45
	a, b := 4, 9
	want, err := GamblersRuin(p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	const n = 200000
	wins := 0
	for i := 0; i < n; i++ {
		pos := a
		for pos > 0 && pos < b {
			if src.Bernoulli(p) {
				pos++
			} else {
				pos--
			}
		}
		if pos == b {
			wins++
		}
	}
	got := float64(wins) / n
	if math.Abs(got-want) > 4*math.Sqrt(want*(1-want)/n) {
		t.Fatalf("simulated ruin %v vs closed form %v", got, want)
	}
}

func TestBrownianMaxTailDriftless(t *testing.T) {
	// mu=0: P(max >= a) = 2 * Phi(-a / (sigma sqrt(T))).
	got, err := BrownianMaxTail(0, 1, 100, 19.6)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 - 0.975) // a = 1.96 sd
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("driftless max tail = %v, want ~%v", got, want)
	}
}

func TestBrownianMaxTailEdgeCases(t *testing.T) {
	if p, _ := BrownianMaxTail(0, 1, 10, -1); p != 1 {
		t.Fatalf("non-positive barrier should give 1, got %v", p)
	}
	if _, err := BrownianMaxTail(0, 0, 10, 1); err == nil {
		t.Fatal("zero sigma accepted")
	}
	if _, err := BrownianMaxTail(0, 1, 0, 1); err == nil {
		t.Fatal("zero T accepted")
	}
	// Strong positive drift: probability approaches 1.
	p, err := BrownianMaxTail(5, 1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Fatalf("strong drift gives %v, want ~1", p)
	}
	// Strong negative drift: tiny but positive and finite.
	p, err = BrownianMaxTail(-1, 1, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1e-10 {
		t.Fatalf("negative drift tail = %v", p)
	}
}

func TestBrownianMaxTailMatchesWalkSimulation(t *testing.T) {
	// The diffusion approximation should match a fine-grained Gaussian
	// walk on a moderate event within a few percent.
	const (
		mu, sigma = 0.05, 1.0
		T         = 400
		a         = 30.0
	)
	want, err := BrownianMaxTail(mu, sigma, T, a)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		x := 0.0
		for t := 0; t < T; t++ {
			x += mu + sigma*src.Norm()
			if x >= a {
				hits++
				break
			}
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("walk simulation %v vs Brownian formula %v", got, want)
	}
}

func TestLatticeWalkHitValidation(t *testing.T) {
	if _, err := LatticeWalkHit(nil, 0, 5, 10, -100); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := LatticeWalkHit(map[int]float64{1: 0.7, -1: 0.7}, 0, 5, 10, -100); err == nil {
		t.Error("non-normalised distribution accepted")
	}
	if _, err := LatticeWalkHit(map[int]float64{1: -1, -1: 2}, 0, 5, 10, -100); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := LatticeWalkHit(map[int]float64{1: 1}, -200, 5, 10, -100); err == nil {
		t.Error("start below floor accepted")
	}
	if p, err := LatticeWalkHit(map[int]float64{1: 1}, 7, 5, 10, 0); err != nil || p != 1 {
		t.Errorf("start above beta: %v, %v", p, err)
	}
}

func TestLatticeWalkHitDeterministic(t *testing.T) {
	// A walk that always steps +1 reaches beta=5 from 0 in exactly 5 steps.
	up := map[int]float64{1: 1}
	p, err := LatticeWalkHit(up, 0, 5, 4, 0)
	if err != nil || p != 0 {
		t.Fatalf("4 steps: %v, %v", p, err)
	}
	p, err = LatticeWalkHit(up, 0, 5, 5, 0)
	if err != nil || math.Abs(p-1) > 1e-12 {
		t.Fatalf("5 steps: %v, %v", p, err)
	}
}

func TestLatticeWalkHitMatchesSimulation(t *testing.T) {
	steps := map[int]float64{1: 0.3, -1: 0.5, 2: 0.2}
	const start, beta, horizon, floor = 0, 8, 40, 0
	want, err := LatticeWalkHit(steps, start, beta, horizon, floor)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	const n = 300000
	hits := 0
	for i := 0; i < n; i++ {
		pos := start
		for t := 0; t < horizon; t++ {
			u := src.Float64()
			switch {
			case u < 0.3:
				pos++
			case u < 0.8:
				pos--
			default:
				pos += 2
			}
			if pos < floor {
				pos = floor
			}
			if pos >= beta {
				hits++
				break
			}
		}
	}
	got := float64(hits) / n
	tol := 5 * math.Sqrt(want*(1-want)/n)
	if math.Abs(got-want) > tol {
		t.Fatalf("simulated %v vs DP %v (tol %v)", got, want, tol)
	}
}

func TestLatticeWalkHitMonotoneInHorizon(t *testing.T) {
	steps := map[int]float64{1: 0.4, -1: 0.6}
	prev := 0.0
	for _, h := range []int{5, 10, 20, 40, 80} {
		p, err := LatticeWalkHit(steps, 0, 6, h, -50)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("hit probability decreased with horizon: %v -> %v", prev, p)
		}
		prev = p
	}
}
