// Package exact provides analytical and exact-by-dynamic-programming
// first-passage answers for the simple processes that admit them (§2.2 of
// the paper, "Analytical Solution"). The samplers never use these; the
// test suite and the ablation benchmarks use them as ground truth, which
// is how the repository validates unbiasedness without trusting any
// sampler to validate another.
package exact

import (
	"fmt"
	"math"

	"durability/internal/stats"
)

// GamblersRuin returns the probability that a ±1 random walk with
// up-probability p, starting at position a, reaches b before 0
// (0 < a < b). The classic closed form:
//
//	p = 1/2:        a / b
//	p != 1/2:       (1 - r^a) / (1 - r^b),  r = (1-p)/p
func GamblersRuin(p float64, a, b int) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("exact: up-probability %v must be in (0,1)", p)
	}
	if a <= 0 || a >= b {
		return 0, fmt.Errorf("exact: need 0 < a < b, got a=%d b=%d", a, b)
	}
	if p == 0.5 {
		return float64(a) / float64(b), nil
	}
	r := (1 - p) / p
	return (1 - math.Pow(r, float64(a))) / (1 - math.Pow(r, float64(b))), nil
}

// BrownianMaxTail returns P(max_{0<=t<=T} X_t >= a) for Brownian motion
// X with drift mu and volatility sigma started at 0, with a > 0 — the
// reflection-principle formula:
//
//	Phi((mu*T - a)/(sigma*sqrt(T))) + exp(2*mu*a/sigma^2) * Phi((-a - mu*T)/(sigma*sqrt(T)))
//
// It is the diffusion approximation for the discrete Gaussian walk and
// anchors the rare-event calibration tests.
func BrownianMaxTail(mu, sigma, T, a float64) (float64, error) {
	if sigma <= 0 || T <= 0 {
		return 0, fmt.Errorf("exact: sigma %v and T %v must be positive", sigma, T)
	}
	if a <= 0 {
		return 1, nil // the maximum starts at 0 >= a
	}
	sd := sigma * math.Sqrt(T)
	term1 := stats.NormCDF((mu*T - a) / sd)
	exponent := 2 * mu * a / (sigma * sigma)
	var term2 float64
	if exponent < 700 { // avoid overflow; the product below stays finite
		term2 = math.Exp(exponent) * stats.NormCDF((-a-mu*T)/sd)
	} else {
		// For large positive drift the first term already approaches 1.
		term2 = 0
	}
	p := term1 + term2
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p, nil
}

// LatticeWalkHit computes, exactly, the probability that an integer
// random walk with bounded step distribution stepProbs (map from step
// size to probability, summing to 1) starting at start reaches >= beta
// within horizon steps. Positions below floor are clamped to floor
// (reflecting), matching queue-like processes; pass floor = math.MinInt
// semantics via a very negative floor for free walks.
//
// The DP runs in O(horizon * range * |steps|): it tracks the full
// position distribution with an absorbing mass at >= beta.
func LatticeWalkHit(stepProbs map[int]float64, start, beta, horizon, floor int) (float64, error) {
	if len(stepProbs) == 0 {
		return 0, fmt.Errorf("exact: empty step distribution")
	}
	total := 0.0
	minStep, maxStep := 0, 0
	for s, p := range stepProbs {
		if p < 0 {
			return 0, fmt.Errorf("exact: negative probability for step %d", s)
		}
		total += p
		if s < minStep {
			minStep = s
		}
		if s > maxStep {
			maxStep = s
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return 0, fmt.Errorf("exact: step probabilities sum to %v", total)
	}
	if start >= beta {
		return 1, nil
	}
	if start < floor {
		return 0, fmt.Errorf("exact: start %d below floor %d", start, floor)
	}
	lo := floor
	// Positions range [lo, beta-1]; mass at >= beta is absorbed.
	width := beta - lo
	if width <= 0 {
		return 1, nil
	}
	cur := make([]float64, width)
	next := make([]float64, width)
	cur[start-lo] = 1
	absorbed := 0.0
	for t := 0; t < horizon; t++ {
		for i := range next {
			next[i] = 0
		}
		stepAbsorbed := 0.0
		for i, mass := range cur {
			if mass == 0 {
				continue
			}
			pos := lo + i
			for s, p := range stepProbs {
				np := pos + s
				switch {
				case np >= beta:
					stepAbsorbed += mass * p
				case np < lo:
					next[0] += mass * p // reflect/clamp at the floor
				default:
					next[np-lo] += mass * p
				}
			}
		}
		absorbed += stepAbsorbed
		cur, next = next, cur
	}
	return absorbed, nil
}
