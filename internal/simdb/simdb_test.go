package simdb

import (
	"context"
	"math"
	"testing"

	"durability/internal/core"
	"durability/internal/expr"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

func TestCreateTableAndInsert(t *testing.T) {
	db := New()
	tb, err := db.CreateTable("t", Column{Name: "a", Type: Float}, Column{Name: "b", Type: Text})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(FloatV(1), TextV("x")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(FloatV(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if _, err := db.CreateTable("t", Column{Name: "a", Type: Float}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateTable("", Column{Name: "a"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "model_params" || names[1] != "t" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestScanWithPredicate(t *testing.T) {
	db := New()
	tb, _ := db.CreateTable("vals", Column{Name: "x", Type: Float}, Column{Name: "tag", Type: Text})
	for i := 0; i < 10; i++ {
		if err := tb.Insert(FloatV(float64(i)), TextV("r")); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tb.Scan(expr.MustParse("x >= 7"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	all, err := tb.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("full scan = %d rows", len(all))
	}
	if _, err := tb.Scan(expr.MustParse("nosuch > 1")); err == nil {
		t.Fatal("unknown column predicate accepted")
	}
}

func TestAggregates(t *testing.T) {
	db := New()
	tb, _ := db.CreateTable("vals", Column{Name: "x", Type: Float})
	for _, v := range []float64{1, 2, 3, 4} {
		if err := tb.Insert(FloatV(v)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		fn   string
		want float64
	}{
		{"count", 4}, {"sum", 10}, {"avg", 2.5}, {"min", 1}, {"max", 4},
	}
	for _, tc := range cases {
		got, err := tb.Agg(tc.fn, "x", nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.fn, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.fn, got, tc.want)
		}
	}
	if got, err := tb.Agg("count", "", expr.MustParse("x > 2")); err != nil || got != 2 {
		t.Fatalf("filtered count = %v, %v", got, err)
	}
	if _, err := tb.Agg("median", "x", nil); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	empty, _ := db.CreateTable("empty", Column{Name: "x", Type: Float})
	if _, err := empty.Agg("avg", "x", nil); err == nil {
		t.Fatal("avg over empty accepted")
	}
	if _, err := empty.Agg("max", "x", nil); err == nil {
		t.Fatal("max over empty accepted")
	}
}

func TestStoreAndLoadModel(t *testing.T) {
	db := New()
	err := db.StoreModel("q", "queue", map[string]float64{"lambda": 0.5, "mu1": 2, "mu2": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.StoreModel("q", "queue", map[string]float64{"lambda": 1, "mu1": 1, "mu2": 1}); err == nil {
		t.Fatal("duplicate model accepted")
	}
	if err := db.StoreModel("bad", "no-such-kind", nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	fields, err := db.Fields("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0] != "q1" || fields[1] != "q2" {
		t.Fatalf("Fields = %v", fields)
	}
	if _, err := db.Fields("missing"); err == nil {
		t.Fatal("missing model accepted")
	}
	// The catalog rows exist.
	catalog, _ := db.Table("model_params")
	if catalog.Len() != 3 {
		t.Fatalf("catalog rows = %d, want 3", catalog.Len())
	}
}

func TestStoreModelMissingParam(t *testing.T) {
	db := New()
	if err := db.StoreModel("q", "queue", map[string]float64{"lambda": 0.5}); err != nil {
		t.Fatal(err) // storing succeeds; building fails lazily
	}
	if _, err := db.Process("q"); err == nil {
		t.Fatal("model with missing parameters built")
	}
}

func TestStoredProcessBehavesLikeNative(t *testing.T) {
	db := New()
	if err := db.StoreModel("w", "random-walk", map[string]float64{"sigma": 1, "drift": 0.1, "start": 5}); err != nil {
		t.Fatal(err)
	}
	sp, err := db.Process("w")
	if err != nil {
		t.Fatal(err)
	}
	native := &stochastic.RandomWalk{Start: 5, Drift: 0.1, Sigma: 1}
	a := sp.Initial()
	b := native.Initial()
	srcA, srcB := rng.New(3), rng.New(3)
	for i := 1; i <= 100; i++ {
		sp.Step(a, i, srcA)
		native.Step(b, i, srcB)
		if stochastic.ScalarValue(a) != stochastic.ScalarValue(b) {
			t.Fatalf("dispatch diverged from native at step %d", i)
		}
	}
	if sp.Name() != "simdb/w" {
		t.Fatalf("Name = %q", sp.Name())
	}
}

func TestCondition(t *testing.T) {
	db := New()
	if err := db.StoreModel("q", "queue", map[string]float64{"lambda": 0.5, "mu1": 2, "mu2": 2}); err != nil {
		t.Fatal(err)
	}
	cond, err := db.Condition("q", "q2 >= 3 && q1 < 100")
	if err != nil {
		t.Fatal(err)
	}
	if cond(&stochastic.QueueState{Q1: 1, Q2: 2}) {
		t.Fatal("condition true at q2=2")
	}
	if !cond(&stochastic.QueueState{Q1: 1, Q2: 3}) {
		t.Fatal("condition false at q2=3")
	}
	if _, err := db.Condition("q", "nosuch >= 1"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := db.Condition("q", "((("); err == nil {
		t.Fatal("garbage expression accepted")
	}
}

func TestMaterializePaths(t *testing.T) {
	db := New()
	if err := db.StoreModel("g", "gbm", map[string]float64{"s0": 100, "sigma": 0.02}); err != nil {
		t.Fatal(err)
	}
	tb, err := db.MaterializePaths("paths", "g", "price", 5, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 100 {
		t.Fatalf("materialised %d rows, want 100", tb.Len())
	}
	// Paths are usable through plain queries: max price across all paths.
	maxP, err := tb.Agg("max", "value", nil)
	if err != nil {
		t.Fatal(err)
	}
	if maxP <= 0 {
		t.Fatalf("max price = %v", maxP)
	}
	n, err := tb.Agg("count", "", expr.MustParse("path == 0"))
	if err != nil || n != 20 {
		t.Fatalf("path-0 rows = %v, %v", n, err)
	}
}

func TestRunQueryAllMethodsAgree(t *testing.T) {
	db := New()
	// A random walk whose hitting probability is sizeable, so all three
	// methods converge quickly.
	if err := db.StoreModel("w", "random-walk", map[string]float64{"sigma": 1, "start": 0}); err != nil {
		t.Fatal(err)
	}
	plan := core.MustPlan(0.4, 0.7)
	base := QuerySpec{
		Model:   "w",
		Field:   "x",
		Beta:    5,
		Horizon: 60,
		Ratio:   3,
		Plan:    plan,
		Stop:    mc.Budget{Steps: 400_000},
		Seed:    9,
	}
	results := map[Method]float64{}
	for _, m := range []Method{MethodSRS, MethodSMLSS, MethodGMLSS} {
		spec := base
		spec.Method = m
		res, err := db.RunQuery(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		results[m] = res.P
	}
	srs := results[MethodSRS]
	for m, p := range results {
		if math.Abs(p-srs) > 0.2*srs {
			t.Fatalf("method %s estimate %v far from SRS %v (all: %v)", m, p, srs, results)
		}
	}
}

func TestRunQueryErrors(t *testing.T) {
	db := New()
	if err := db.StoreModel("w", "random-walk", map[string]float64{"sigma": 1}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := db.RunQuery(ctx, QuerySpec{Model: "missing", Field: "x", Beta: 1, Horizon: 10, Method: MethodSRS, Stop: mc.Budget{Steps: 10}}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := db.RunQuery(ctx, QuerySpec{Model: "w", Field: "bad", Beta: 1, Horizon: 10, Method: MethodSRS, Stop: mc.Budget{Steps: 10}}); err == nil {
		t.Error("missing field accepted")
	}
	if _, err := db.RunQuery(ctx, QuerySpec{Model: "w", Field: "x", Beta: 1, Horizon: 10, Method: MethodSRS}); err == nil {
		t.Error("missing stop rule accepted")
	}
	if _, err := db.RunQuery(ctx, QuerySpec{Model: "w", Field: "x", Beta: 1, Horizon: 10, Method: "bogus", Stop: mc.Budget{Steps: 10}}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestAllBuilders(t *testing.T) {
	cases := []struct {
		kind   string
		params map[string]float64
		field  string
	}{
		{"queue", map[string]float64{"lambda": 0.5, "mu1": 2, "mu2": 2}, "q2"},
		{"cpp", map[string]float64{"u": 15, "c": 6, "lambda": 0.8, "claim_lo": 5, "claim_hi": 10}, "u"},
		{"random-walk", map[string]float64{"sigma": 1}, "x"},
		{"gbm", map[string]float64{"s0": 100, "sigma": 0.02}, "price"},
	}
	for _, tc := range cases {
		db := New()
		if err := db.StoreModel("m", tc.kind, tc.params); err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		sp, err := db.Process("m")
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		obs, err := db.Observer("m", tc.field)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		src := rng.New(1)
		st := sp.Initial()
		for i := 1; i <= 10; i++ {
			sp.Step(st, i, src)
		}
		v := obs(st)
		if math.IsNaN(v) {
			t.Fatalf("%s observation is NaN", tc.kind)
		}
	}
}
