package simdb

import (
	"context"
	"fmt"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// Method selects the sampler a stored query runs with.
type Method string

// Stored-procedure sampler methods.
const (
	MethodSRS   Method = "srs"
	MethodSMLSS Method = "s-mlss"
	MethodGMLSS Method = "g-mlss"
)

// QuerySpec is a durability prediction query addressed to a stored model:
// the probability that Field reaches Beta within Horizon steps, answered
// by the chosen sampler running as a stored procedure (every simulator
// invocation dispatches through the catalog).
type QuerySpec struct {
	Model   string
	Field   string  // the observable z
	Beta    float64 // threshold: condition is z >= Beta
	Horizon int

	Method  Method
	Plan    core.Plan // MLSS level plan; ignored by SRS
	Ratio   int       // MLSS splitting ratio (default 3)
	Stop    mc.StopRule
	Seed    uint64
	Workers int
}

// RunQuery executes the stored durability query. This is the simdb
// equivalent of the paper's "implement MLSS as stored procedure" (§6.4).
func (db *DB) RunQuery(ctx context.Context, spec QuerySpec) (mc.Result, error) {
	proc, err := db.Process(spec.Model)
	if err != nil {
		return mc.Result{}, err
	}
	obs, err := db.Observer(spec.Model, spec.Field)
	if err != nil {
		return mc.Result{}, err
	}
	if spec.Stop == nil {
		return mc.Result{}, fmt.Errorf("simdb: query needs a stop rule")
	}
	ratio := spec.Ratio
	if ratio <= 0 {
		ratio = 3
	}
	switch spec.Method {
	case MethodSRS:
		s := &mc.SRS{
			Proc:    proc,
			Query:   mc.Query{Cond: mc.Threshold(obs, spec.Beta), Horizon: spec.Horizon},
			Stop:    spec.Stop,
			Seed:    spec.Seed,
			Workers: spec.Workers,
		}
		return s.Run(ctx)
	case MethodSMLSS:
		s := &core.SMLSS{
			Proc:    proc,
			Query:   core.Query{Value: core.ThresholdValue(obs, spec.Beta), Horizon: spec.Horizon},
			Plan:    spec.Plan,
			Ratio:   ratio,
			Stop:    spec.Stop,
			Seed:    spec.Seed,
			Workers: spec.Workers,
		}
		return s.Run(ctx)
	case MethodGMLSS:
		g := &core.GMLSS{
			Proc:    proc,
			Query:   core.Query{Value: core.ThresholdValue(obs, spec.Beta), Horizon: spec.Horizon},
			Plan:    spec.Plan,
			Ratio:   ratio,
			Stop:    spec.Stop,
			Seed:    spec.Seed,
			Workers: spec.Workers,
		}
		return g.Run(ctx)
	}
	return mc.Result{}, fmt.Errorf("simdb: unknown method %q", spec.Method)
}

// interface conformance check: the dispatching process is a Process.
var _ stochastic.Process = (*StoredProcess)(nil)
