package simdb

import (
	"bytes"
	"encoding/gob"
	"testing"

	"durability/internal/rng"
	"durability/internal/stochastic"
)

// Every model kind the catalog can instantiate must produce states that
// round-trip through gob as interface values — catalog-built models flow
// into the same snapshots and cluster requests as directly constructed
// ones, so the builder registry is part of the gob audit surface.
func TestBuilderStatesGob(t *testing.T) {
	params := map[string]map[string]float64{
		"queue":       {"lambda": 0.5, "mu1": 2, "mu2": 2},
		"cpp":         {"u": 15, "c": 6, "lambda": 0.8, "claim_lo": 5, "claim_hi": 10},
		"random-walk": {"sigma": 1},
		"gbm":         {"s0": 100, "sigma": 0.01},
	}
	for kind, build := range builders {
		t.Run(kind, func(t *testing.T) {
			p, ok := params[kind]
			if !ok {
				t.Fatalf("no audit parameters for builder %q — add them so its state type stays covered", kind)
			}
			proc, fields, err := build(p)
			if err != nil {
				t.Fatal(err)
			}
			var obs stochastic.Observer
			for _, o := range fields {
				obs = o
				break
			}
			st := proc.Initial()
			src := rng.NewStream(5, 0)
			for i := 1; i <= 5; i++ {
				proc.Step(st, i, src)
			}

			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(struct{ S stochastic.State }{S: st}); err != nil {
				t.Fatalf("%s: encoding %T: %v", kind, st, err)
			}
			var out struct{ S stochastic.State }
			if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
				t.Fatalf("%s: decoding: %v", kind, err)
			}
			if got, want := obs(out.S), obs(st); got != want {
				t.Fatalf("%s: decoded state observes %v, original %v", kind, got, want)
			}
		})
	}
}
