package simdb

import (
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"durability/internal/expr"
)

// ScanOrdered returns rows matching where, sorted by the given float
// column (descending when desc is set), truncated to limit rows when
// limit > 0 — the ORDER BY ... LIMIT of the embedded engine, used to
// inspect materialised sample paths ("which paths peaked highest?").
func (t *Table) ScanOrdered(where *expr.Expr, orderBy string, desc bool, limit int) ([]Row, error) {
	idx, err := t.colIndex(orderBy)
	if err != nil {
		return nil, err
	}
	rows, err := t.Scan(where)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if desc {
			return rows[a][idx].F > rows[b][idx].F
		}
		return rows[a][idx].F < rows[b][idx].F
	})
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows, nil
}

// Delete removes the rows matching the predicate and returns how many
// were removed. A nil predicate clears the table.
func (t *Table) Delete(where *expr.Expr) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if where == nil {
		n := len(t.rows)
		t.rows = nil
		return n, nil
	}
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		match, err := where.EvalBool(rowEnv{cols: t.cols, row: r})
		if err != nil {
			return removed, err
		}
		if match {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	t.rows = kept
	return removed, nil
}

// WriteCSV streams the table (header plus rows) as CSV — the export path
// for plotting materialised sample paths outside the process.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.cols))
	for i, c := range t.cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	record := make([]string, len(t.cols))
	for _, r := range t.rows {
		for i, c := range t.cols {
			if c.Type == Float {
				record[i] = strconv.FormatFloat(r[i].F, 'g', -1, 64)
			} else {
				record[i] = r[i].S
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// snapshotWire is the gob schema for database persistence.
type snapshotWire struct {
	Tables map[string]tableWire
}

type tableWire struct {
	Cols []Column
	Rows []Row
}

// Snapshot serialises every table (schema and rows) to w. Hosted model
// instances are not serialised — they rebuild lazily from the catalog
// after Restore, which is the point of keeping parameters in a table.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	wire := snapshotWire{Tables: map[string]tableWire{}}
	for name, t := range db.tables {
		t.mu.RLock()
		rows := make([]Row, len(t.rows))
		for i, r := range t.rows {
			rows[i] = append(Row(nil), r...)
		}
		wire.Tables[name] = tableWire{Cols: append([]Column(nil), t.cols...), Rows: rows}
		t.mu.RUnlock()
	}
	db.mu.RUnlock()
	return gob.NewEncoder(w).Encode(wire)
}

// Restore loads a snapshot into a fresh database. Stored models become
// loadable again because their parameter rows travel with the catalog.
func Restore(r io.Reader) (*DB, error) {
	var wire snapshotWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	catalog, ok := wire.Tables["model_params"]
	if !ok {
		return nil, errors.New("simdb: snapshot is missing the model_params catalog")
	}
	db := New()
	ct, err := db.Table("model_params")
	if err != nil {
		return nil, err
	}
	ct.mu.Lock()
	ct.rows = catalog.Rows
	ct.mu.Unlock()
	// Re-reserve the stored model names so loadModel accepts them.
	db.mu.Lock()
	for _, row := range catalog.Rows {
		if len(row) > 0 {
			if _, exists := db.models[row[0].S]; !exists {
				db.models[row[0].S] = nil
			}
		}
	}
	db.mu.Unlock()
	for name, tw := range wire.Tables {
		if name == "model_params" {
			continue
		}
		t, err := db.CreateTable(name, tw.Cols...)
		if err != nil {
			return nil, fmt.Errorf("simdb: restoring table %q: %w", name, err)
		}
		t.mu.Lock()
		t.rows = tw.Rows
		t.mu.Unlock()
	}
	return db, nil
}
