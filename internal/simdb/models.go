package simdb

import (
	"fmt"

	"durability/internal/stochastic"
)

// builder instantiates a model kind from catalog parameters, returning the
// process and its observable fields.
type builder func(params map[string]float64) (stochastic.Process, map[string]stochastic.Observer, error)

// builders is the registry of model kinds the catalog understands. Each
// corresponds to one of the repository's simulation models; adding a kind
// means adding a constructor here.
var builders = map[string]builder{
	"queue":       buildQueue,
	"cpp":         buildCPP,
	"random-walk": buildRandomWalk,
	"gbm":         buildGBM,
}

// need fetches a required parameter.
func need(params map[string]float64, key string) (float64, error) {
	v, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("missing parameter %q", key)
	}
	return v, nil
}

// opt fetches an optional parameter with a default.
func opt(params map[string]float64, key string, def float64) float64 {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}

func buildQueue(params map[string]float64) (stochastic.Process, map[string]stochastic.Observer, error) {
	lambda, err := need(params, "lambda")
	if err != nil {
		return nil, nil, err
	}
	mu1, err := need(params, "mu1")
	if err != nil {
		return nil, nil, err
	}
	mu2, err := need(params, "mu2")
	if err != nil {
		return nil, nil, err
	}
	q := stochastic.NewTandemQueue(lambda, mu1, mu2)
	q.ImpulseProb = opt(params, "impulse_prob", 0)
	q.ImpulseSize = int(opt(params, "impulse_size", 0))
	q.ImpulseAfter = int(opt(params, "impulse_after", 0))
	fields := map[string]stochastic.Observer{
		"q1": stochastic.Queue1Len,
		"q2": stochastic.Queue2Len,
	}
	return q, fields, nil
}

func buildCPP(params map[string]float64) (stochastic.Process, map[string]stochastic.Observer, error) {
	u, err := need(params, "u")
	if err != nil {
		return nil, nil, err
	}
	c, err := need(params, "c")
	if err != nil {
		return nil, nil, err
	}
	lambda, err := need(params, "lambda")
	if err != nil {
		return nil, nil, err
	}
	lo, err := need(params, "claim_lo")
	if err != nil {
		return nil, nil, err
	}
	hi, err := need(params, "claim_hi")
	if err != nil {
		return nil, nil, err
	}
	p := stochastic.NewCompoundPoisson(u, c, lambda, lo, hi)
	p.ImpulseProb = opt(params, "impulse_prob", 0)
	p.ImpulseSize = opt(params, "impulse_size", 0)
	p.ImpulseAfter = int(opt(params, "impulse_after", 0))
	fields := map[string]stochastic.Observer{
		"u": stochastic.ScalarValue,
	}
	return p, fields, nil
}

func buildRandomWalk(params map[string]float64) (stochastic.Process, map[string]stochastic.Observer, error) {
	sigma, err := need(params, "sigma")
	if err != nil {
		return nil, nil, err
	}
	w := &stochastic.RandomWalk{
		Start: opt(params, "start", 0),
		Drift: opt(params, "drift", 0),
		Sigma: sigma,
	}
	return w, map[string]stochastic.Observer{"x": stochastic.ScalarValue}, nil
}

func buildGBM(params map[string]float64) (stochastic.Process, map[string]stochastic.Observer, error) {
	s0, err := need(params, "s0")
	if err != nil {
		return nil, nil, err
	}
	sigma, err := need(params, "sigma")
	if err != nil {
		return nil, nil, err
	}
	g := &stochastic.GBM{S0: s0, Mu: opt(params, "mu", 0), Sigma: sigma}
	return g, map[string]stochastic.Observer{"price": stochastic.ScalarValue}, nil
}
