// Package simdb is a small embedded model database: tables hold model
// parameters and materialised sample paths, stored procedures host the
// samplers, and a catalog dispatches every simulator invocation.
//
// It reproduces §6.4 of the paper ("Implementations inside DBMS", Table 7)
// without PostgreSQL: the paper stores the parameters of the step-wise
// procedure 𝔤 in a database table, implements MLSS as a stored procedure,
// and materialises generated sample paths as tables for later analysis.
// The claim Table 7 supports is that MLSS's advantage over SRS survives
// the per-invocation indirection a DBMS imposes; simdb imposes the
// analogous indirection (catalog lookup and procedure dispatch on every
// step) while staying inside the stdlib.
package simdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"durability/internal/expr"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

// ColType is a column's type.
type ColType int

// Column types.
const (
	Float ColType = iota
	Text
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Value is one cell; the active field follows the column type.
type Value struct {
	F float64
	S string
}

// FloatV and TextV build cells.
func FloatV(f float64) Value { return Value{F: f} }

// TextV builds a text cell.
func TextV(s string) Value { return Value{S: s} }

// Row is one table row.
type Row []Value

// Table is an in-memory relation.
type Table struct {
	name string
	cols []Column
	mu   sync.RWMutex
	rows []Row
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the column descriptors.
func (t *Table) Columns() []Column { return append([]Column(nil), t.cols...) }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends one row after checking arity.
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("simdb: table %s has %d columns, got %d values", t.name, len(t.cols), len(vals))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows, append(Row(nil), vals...))
	return nil
}

// rowEnv adapts a row to the expression environment: float columns are
// visible by name; text columns are not addressable in expressions.
type rowEnv struct {
	cols []Column
	row  Row
}

// Lookup implements expr.Env.
func (e rowEnv) Lookup(name string) (float64, bool) {
	for i, c := range e.cols {
		if c.Name == name && c.Type == Float {
			return e.row[i].F, true
		}
	}
	return 0, false
}

// Scan returns the rows matching the predicate (all rows when where is
// nil). The returned rows are copies.
func (t *Table) Scan(where *expr.Expr) ([]Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Row
	for _, r := range t.rows {
		if where != nil {
			ok, err := where.EvalBool(rowEnv{cols: t.cols, row: r})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, append(Row(nil), r...))
	}
	return out, nil
}

// colIndex resolves a float column by name.
func (t *Table) colIndex(col string) (int, error) {
	for i, c := range t.cols {
		if c.Name == col {
			if c.Type != Float {
				return 0, fmt.Errorf("simdb: column %s.%s is not numeric", t.name, col)
			}
			return i, nil
		}
	}
	return 0, fmt.Errorf("simdb: table %s has no column %q", t.name, col)
}

// Agg computes a simple aggregate ("count", "sum", "avg", "min", "max")
// over a float column for rows matching where.
func (t *Table) Agg(fn, col string, where *expr.Expr) (float64, error) {
	idx := -1
	if fn != "count" {
		i, err := t.colIndex(col)
		if err != nil {
			return 0, err
		}
		idx = i
	}
	rows, err := t.Scan(where)
	if err != nil {
		return 0, err
	}
	switch fn {
	case "count":
		return float64(len(rows)), nil
	case "sum", "avg":
		s := 0.0
		for _, r := range rows {
			s += r[idx].F
		}
		if fn == "avg" {
			if len(rows) == 0 {
				return 0, errors.New("simdb: avg over empty selection")
			}
			s /= float64(len(rows))
		}
		return s, nil
	case "min", "max":
		if len(rows) == 0 {
			return 0, fmt.Errorf("simdb: %s over empty selection", fn)
		}
		best := rows[0][idx].F
		for _, r := range rows[1:] {
			v := r[idx].F
			if (fn == "min" && v < best) || (fn == "max" && v > best) {
				best = v
			}
		}
		return best, nil
	}
	return 0, fmt.Errorf("simdb: unknown aggregate %q", fn)
}

// DB is the embedded database: a catalog of tables, registered model
// kinds, and instantiated models hosted behind procedure dispatch.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	models map[string]*hostedModel
}

// New returns an empty database with the parameter catalog created.
func New() *DB {
	db := &DB{tables: map[string]*Table{}, models: map[string]*hostedModel{}}
	// The parameter catalog table, mirroring the paper's "database table
	// for storing parameters of the procedure g".
	t, err := db.CreateTable("model_params",
		Column{Name: "model", Type: Text},
		Column{Name: "kind", Type: Text},
		Column{Name: "param", Type: Text},
		Column{Name: "value", Type: Float},
	)
	if err != nil || t == nil {
		panic("simdb: cannot create catalog table")
	}
	return db
}

// CreateTable registers a new table.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	if name == "" || len(cols) == 0 {
		return nil, errors.New("simdb: table needs a name and at least one column")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("simdb: table %q already exists", name)
	}
	t := &Table{name: name, cols: append([]Column(nil), cols...)}
	db.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("simdb: no table %q", name)
	}
	return t, nil
}

// TableNames lists all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StoreModel writes a model's parameters into the catalog table. kind
// selects a registered builder ("queue", "cpp", "random-walk", "gbm").
func (db *DB) StoreModel(name, kind string, params map[string]float64) error {
	if _, ok := builders[kind]; !ok {
		return fmt.Errorf("simdb: unknown model kind %q", kind)
	}
	catalog, err := db.Table("model_params")
	if err != nil {
		return err
	}
	db.mu.Lock()
	if _, exists := db.models[name]; exists {
		db.mu.Unlock()
		return fmt.Errorf("simdb: model %q already stored", name)
	}
	db.models[name] = nil // reserve; instantiated lazily
	db.mu.Unlock()

	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := catalog.Insert(TextV(name), TextV(kind), TextV(k), FloatV(params[k])); err != nil {
			return err
		}
	}
	return nil
}

// hostedModel is an instantiated model behind the dispatcher.
type hostedModel struct {
	proc   stochastic.Process
	fields map[string]stochastic.Observer
}

// loadModel instantiates (or fetches the cached) model from the catalog —
// the stored-procedure equivalent of preparing 𝔤 from its parameter rows.
func (db *DB) loadModel(name string) (*hostedModel, error) {
	db.mu.RLock()
	hm, ok := db.models[name]
	db.mu.RUnlock()
	if ok && hm != nil {
		return hm, nil
	}
	if !ok {
		return nil, fmt.Errorf("simdb: no model %q", name)
	}
	catalog, err := db.Table("model_params")
	if err != nil {
		return nil, err
	}
	catalog.mu.RLock()
	params := map[string]float64{}
	kind := ""
	for _, r := range catalog.rows {
		if r[0].S == name {
			kind = r[1].S
			params[r[2].S] = r[3].F
		}
	}
	catalog.mu.RUnlock()
	if kind == "" {
		return nil, fmt.Errorf("simdb: model %q has no catalog rows", name)
	}
	build := builders[kind]
	proc, fields, err := build(params)
	if err != nil {
		return nil, fmt.Errorf("simdb: building model %q: %w", name, err)
	}
	hm = &hostedModel{proc: proc, fields: fields}
	db.mu.Lock()
	db.models[name] = hm
	db.mu.Unlock()
	return hm, nil
}

// Fields returns the observable field names of a stored model, sorted.
func (db *DB) Fields(model string) ([]string, error) {
	hm, err := db.loadModel(model)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(hm.fields))
	for f := range hm.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out, nil
}

// StoredProcess exposes a stored model as a stochastic.Process whose every
// Step goes through the database dispatcher — the per-invocation overhead
// that distinguishes the in-DBMS pipeline from calling 𝔤 natively.
type StoredProcess struct {
	db    *DB
	model string
}

// Process returns the dispatching process for a stored model.
func (db *DB) Process(model string) (*StoredProcess, error) {
	if _, err := db.loadModel(model); err != nil {
		return nil, err
	}
	return &StoredProcess{db: db, model: model}, nil
}

// Name implements stochastic.Process.
func (p *StoredProcess) Name() string { return "simdb/" + p.model }

// Initial implements stochastic.Process.
func (p *StoredProcess) Initial() stochastic.State {
	hm, err := p.db.loadModel(p.model)
	if err != nil {
		panic(err) // Process() validated the model; losing it mid-run is a bug
	}
	return hm.proc.Initial()
}

// Step implements stochastic.Process via catalog dispatch.
func (p *StoredProcess) Step(s stochastic.State, t int, src *rng.Source) {
	hm, err := p.db.loadModel(p.model)
	if err != nil {
		panic(err)
	}
	hm.proc.Step(s, t, src)
}

// Observer resolves a stored model's field into an observer.
func (db *DB) Observer(model, field string) (stochastic.Observer, error) {
	hm, err := db.loadModel(model)
	if err != nil {
		return nil, err
	}
	obs, ok := hm.fields[field]
	if !ok {
		return nil, fmt.Errorf("simdb: model %q has no field %q", model, field)
	}
	return obs, nil
}

// stateEnv evaluates expressions against a live simulation state.
type stateEnv struct {
	fields map[string]stochastic.Observer
	state  stochastic.State
}

// Lookup implements expr.Env.
func (e stateEnv) Lookup(name string) (float64, bool) {
	obs, ok := e.fields[name]
	if !ok {
		return 0, false
	}
	return obs(e.state), true
}

// Condition compiles an expression over a model's fields into a state
// predicate — the query function q of §2.1 written in SQL-ish text.
func (db *DB) Condition(model, src string) (func(stochastic.State) bool, error) {
	hm, err := db.loadModel(model)
	if err != nil {
		return nil, err
	}
	e, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, v := range e.Vars() {
		if _, ok := hm.fields[v]; !ok {
			return nil, fmt.Errorf("simdb: condition references unknown field %q of model %q", v, model)
		}
	}
	return func(s stochastic.State) bool {
		ok, err := e.EvalBool(stateEnv{fields: hm.fields, state: s})
		return err == nil && ok
	}, nil
}

// MaterializePaths simulates n sample paths of a stored model and writes
// them into a new table (path, t, value) — the paper's §6.4 closing note:
// materialised paths support later visualisation and analysis with plain
// queries.
func (db *DB) MaterializePaths(table, model, field string, n, steps int, seed uint64) (*Table, error) {
	sp, err := db.Process(model)
	if err != nil {
		return nil, err
	}
	obs, err := db.Observer(model, field)
	if err != nil {
		return nil, err
	}
	t, err := db.CreateTable(table,
		Column{Name: "path", Type: Float},
		Column{Name: "t", Type: Float},
		Column{Name: "value", Type: Float},
	)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		src := rng.NewStream(seed, uint64(i))
		st := sp.Initial()
		for step := 1; step <= steps; step++ {
			sp.Step(st, step, src)
			if err := t.Insert(FloatV(float64(i)), FloatV(float64(step)), FloatV(obs(st))); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
