package simdb

import (
	"bytes"
	"strings"
	"testing"

	"durability/internal/expr"
	"durability/internal/rng"
	"durability/internal/stochastic"
)

func filledTable(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := New()
	tb, err := db.CreateTable("vals",
		Column{Name: "x", Type: Float}, Column{Name: "tag", Type: Text})
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range []string{"a", "b", "c", "d", "e"} {
		if err := tb.Insert(FloatV(float64(4-i)), TextV(tag)); err != nil {
			t.Fatal(err)
		}
	}
	return db, tb
}

func TestScanOrdered(t *testing.T) {
	_, tb := filledTable(t)
	rows, err := tb.ScanOrdered(nil, "x", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].F < rows[i-1][0].F {
			t.Fatal("ascending order violated")
		}
	}
	top, err := tb.ScanOrdered(nil, "x", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0][0].F != 4 || top[1][0].F != 3 {
		t.Fatalf("top-2 = %v", top)
	}
	filtered, err := tb.ScanOrdered(expr.MustParse("x >= 2"), "x", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 3 {
		t.Fatalf("filtered rows = %d", len(filtered))
	}
	if _, err := tb.ScanOrdered(nil, "tag", false, 0); err == nil {
		t.Fatal("ordering by a text column accepted")
	}
	if _, err := tb.ScanOrdered(nil, "missing", false, 0); err == nil {
		t.Fatal("ordering by a missing column accepted")
	}
}

func TestDelete(t *testing.T) {
	_, tb := filledTable(t)
	n, err := tb.Delete(expr.MustParse("x < 2"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || tb.Len() != 3 {
		t.Fatalf("deleted %d, remaining %d", n, tb.Len())
	}
	n, err = tb.Delete(nil)
	if err != nil || n != 3 || tb.Len() != 0 {
		t.Fatalf("clear: %d removed, %d remaining, %v", n, tb.Len(), err)
	}
}

func TestDeleteBadPredicate(t *testing.T) {
	_, tb := filledTable(t)
	if _, err := tb.Delete(expr.MustParse("missing > 1")); err == nil {
		t.Fatal("unknown column predicate accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	_, tb := filledTable(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv has %d lines, want 6", len(lines))
	}
	if lines[0] != "x,tag" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := New()
	if err := db.StoreModel("w", "random-walk", map[string]float64{"sigma": 1, "start": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.MaterializePaths("paths", "w", "x", 3, 10, 5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Tables survived.
	pt, err := restored.Table("paths")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 30 {
		t.Fatalf("restored paths table has %d rows, want 30", pt.Len())
	}
	// The stored model is loadable again (rebuilt from catalog rows).
	sp, err := restored.Process("w")
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	s := sp.Initial()
	if stochastic.ScalarValue(s) != 2 {
		t.Fatalf("restored walk start = %v, want 2", stochastic.ScalarValue(s))
	}
	sp.Step(s, 1, src)
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestMaterializedPathAnalysis(t *testing.T) {
	// End-to-end §6.4 workflow: store model, materialise paths, analyse
	// with ordered scans — "which path peaked highest?"
	db := New()
	if err := db.StoreModel("g", "gbm", map[string]float64{"s0": 100, "sigma": 0.05}); err != nil {
		t.Fatal(err)
	}
	tb, err := db.MaterializePaths("paths", "g", "price", 10, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	top, err := tb.ScanOrdered(nil, "value", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxAgg, err := tb.Agg("max", "value", nil)
	if err != nil {
		t.Fatal(err)
	}
	if top[0][2].F != maxAgg {
		t.Fatalf("ordered top %v != max aggregate %v", top[0][2].F, maxAgg)
	}
}
