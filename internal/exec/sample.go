package exec

import (
	"context"
	"errors"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/telemetry"
)

// SampleOptions tunes the estimator loop of Sample.
type SampleOptions struct {
	// Stop is the quality target; required.
	Stop mc.StopRule
	// BatchRoots is the number of root paths simulated per
	// synchronization round (default 256). It is rounded up to a multiple
	// of GroupRoots so every bootstrap group is full.
	BatchRoots int
	// GroupRoots is the number of consecutive root paths per bootstrap
	// group (default 16).
	GroupRoots int
	// BootstrapReps is the number of replicates per variance evaluation
	// (default 200).
	BootstrapReps int
	// Trace, when set, observes the running estimate after every round.
	Trace func(mc.Result)
	// Tracer, when set, books one merge span per synchronization round
	// (counter merge + estimate + bootstrap variance). Telemetry only.
	Tracer *telemetry.Tracer
	// Counters, when set, receives the run's finalized aggregate
	// counters (root paths and simulator steps alongside) exactly once,
	// at a successful return. The aggregate is the in-root-order fold of
	// every shard's groups, so it is identical across backends and
	// cluster sizes — the crossing-statistics ledger hangs off this
	// hook. Observability only.
	Counters func(agg core.Counters, roots, steps int64)
}

func (o SampleOptions) withDefaults() SampleOptions {
	if o.GroupRoots <= 0 {
		o.GroupRoots = 16
	}
	if o.BatchRoots <= 0 {
		o.BatchRoots = 256
	}
	if rem := o.BatchRoots % o.GroupRoots; rem != 0 {
		o.BatchRoots += o.GroupRoots - rem
	}
	if o.BootstrapReps <= 0 {
		o.BootstrapReps = 200
	}
	return o
}

// Sample runs the §3.1 coordination loop over any execution backend:
// simulate a batch of root paths through the executor, merge the
// counters, refresh the running estimate and its bootstrap variance, and
// stop when the quality target holds. Because the per-round batch size is
// fixed (rather than scaled by worker count), the sequence of estimates —
// and therefore the stopping point and the returned result — is bit-for-
// bit identical across backends and cluster sizes at the same seed.
//
// The task's Proc and Obs are required even over a remote backend: the
// estimator runs coordinator-side and needs the start level of the plan,
// which it reads from the start state (Start when pinned, the process's
// Initial otherwise).
func Sample(ctx context.Context, ex Executor, t Task, opt SampleOptions) (mc.Result, error) {
	opt = opt.withDefaults()
	if ex == nil {
		ex = Local{}
	}
	if opt.Stop == nil {
		return mc.Result{}, errors.New("exec: Sample requires a stop rule")
	}
	if err := t.validate(); err != nil {
		return mc.Result{}, err
	}
	if t.Proc == nil || t.Obs == nil {
		return mc.Result{}, errors.New("exec: Sample needs the task's process and observer for coordinator-side estimation")
	}
	plan, err := core.NewPlan(t.Boundaries...)
	if err != nil {
		return mc.Result{}, err
	}
	m := plan.M()
	value := core.ThresholdValue(t.Obs, t.Beta)
	start := t.Start
	if start == nil {
		start = t.Proc.Initial()
	}
	initLevel := plan.LevelOf(value(start, 0))
	if initLevel >= m {
		return mc.Result{}, errors.New("exec: initial state already satisfies the query")
	}

	began := telemetry.Now()
	agg := core.NewCounters(m)
	var groups []core.Counters
	var res mc.Result
	// Dedicated resampling stream, disjoint from the root substreams
	// (which count up from zero) and from the samplers' own reserved
	// indices.
	bootSrc := rng.NewStream(t.Seed, 1<<61)
	next := int64(0)
	for {
		if err := ctx.Err(); err != nil {
			res.Elapsed = telemetry.Since(began)
			return res, err
		}
		shard, err := ex.RunRoots(ctx, t, next, next+int64(opt.BatchRoots), opt.GroupRoots)
		if err != nil {
			res.Elapsed = telemetry.Since(began)
			return res, err
		}
		next += int64(opt.BatchRoots)
		mergeBegan := telemetry.Now()
		for _, g := range shard.Groups {
			agg.Add(g)
			groups = append(groups, g)
		}
		res.Steps += shard.Steps
		res.Paths += shard.Roots
		res.Hits = int64(agg.Hits)
		res.P = core.EstimateFromCounters(agg, res.Paths, m, initLevel)
		res.Variance = core.BootstrapVarianceFromGroups(groups, int64(opt.GroupRoots), m, initLevel, opt.BootstrapReps, bootSrc)
		opt.Tracer.Observe(telemetry.StageMerge, telemetry.Since(mergeBegan), 0)
		res.Elapsed = telemetry.Since(began)
		if opt.Trace != nil {
			opt.Trace(res)
		}
		if opt.Stop.Done(res) {
			if opt.Counters != nil {
				opt.Counters(agg, res.Paths, res.Steps)
			}
			return res, nil
		}
	}
}
