package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/rng"
	"durability/internal/telemetry"
)

// BatchTarget is one threshold of a batch, identified by the plan level
// its normalized value sits at (the boundary index; the top threshold is
// level M). Each target carries its own stop rule, evaluated against the
// target's running prefix result.
type BatchTarget struct {
	Level int
	Stop  mc.StopRule
}

// SampleBatch runs the §3.1 coordination loop once for a whole threshold
// lattice: one shared stream of root paths is simulated through the
// executor, and every target's estimate is read off the merged counters
// as a cumulative level-crossing prefix (core.EstimatePrefixFromCounters)
// with a bootstrap variance per prefix. The loop stops when every
// target's stop rule is satisfied, so the shared run is sized by the
// hardest threshold and every easier one rides along for free.
//
// The returned results align with targets. Steps and Paths on each result
// are the shared run's totals — the cost is joint, not attributable per
// threshold; sum Steps over a batch's results and you count the run once
// per target. Hits reports the crossing events observed at the target's
// own boundary.
//
// Determinism matches Sample: the per-round batch size is fixed, root i
// draws substream i wherever it is simulated, groups cover fixed windows
// and merges fold in root order — so the per-threshold answers are
// bit-for-bit identical across backends and cluster sizes at equal seed.
func SampleBatch(ctx context.Context, ex Executor, t Task, targets []BatchTarget, opt SampleOptions) ([]mc.Result, error) {
	opt = opt.withDefaults()
	if ex == nil {
		ex = Local{}
	}
	if len(targets) == 0 {
		return nil, errors.New("exec: SampleBatch requires at least one target")
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	if t.Proc == nil || t.Obs == nil {
		return nil, errors.New("exec: SampleBatch needs the task's process and observer for coordinator-side estimation")
	}
	plan, err := core.NewPlan(t.Boundaries...)
	if err != nil {
		return nil, err
	}
	m := plan.M()
	value := core.ThresholdValue(t.Obs, t.Beta)
	start := t.Start
	if start == nil {
		start = t.Proc.Initial()
	}
	initLevel := plan.LevelOf(value(start, 0))
	if initLevel >= m {
		return nil, errors.New("exec: initial state already satisfies the query")
	}
	levels := make([]int, len(targets))
	for i, tg := range targets {
		if tg.Stop == nil {
			return nil, fmt.Errorf("exec: batch target %d has no stop rule", i)
		}
		if tg.Level <= initLevel || tg.Level > m {
			return nil, fmt.Errorf("exec: batch target level %d outside (%d, %d]", tg.Level, initLevel, m)
		}
		levels[i] = tg.Level
	}

	began := telemetry.Now()
	agg := core.NewCounters(m)
	var groups []core.Counters
	results := make([]mc.Result, len(targets))
	// Same dedicated resampling stream as Sample; a one-target batch
	// replays Sample's variance trajectory draw for draw.
	bootSrc := rng.NewStream(t.Seed, 1<<61)
	next := int64(0)
	var steps, paths int64
	for {
		if err := ctx.Err(); err != nil {
			finishBatch(results, steps, paths, began)
			return results, err
		}
		shard, err := ex.RunRoots(ctx, t, next, next+int64(opt.BatchRoots), opt.GroupRoots)
		if err != nil {
			finishBatch(results, steps, paths, began)
			return results, err
		}
		next += int64(opt.BatchRoots)
		mergeBegan := telemetry.Now()
		for _, g := range shard.Groups {
			agg.Add(g)
			groups = append(groups, g)
		}
		steps += shard.Steps
		paths += shard.Roots
		variances := core.BootstrapPrefixVariancesFromGroups(groups, int64(opt.GroupRoots), m, initLevel, levels, opt.BootstrapReps, bootSrc)
		done := true
		for i := range targets {
			r := &results[i]
			r.Steps = steps
			r.Paths = paths
			r.Hits = int64(core.PrefixCrossings(agg, m, levels[i]))
			r.P = core.EstimatePrefixFromCounters(agg, paths, m, levels[i], initLevel)
			r.Variance = variances[i]
			r.Elapsed = telemetry.Since(began)
			if !targets[i].Stop.Done(*r) {
				done = false
			}
		}
		opt.Tracer.Observe(telemetry.StageMerge, telemetry.Since(mergeBegan), 0)
		if opt.Trace != nil {
			// One run, one trace: the last target's running result (the
			// serve layer orders targets ascending, so this is the top —
			// hardest — threshold).
			opt.Trace(results[len(results)-1])
		}
		if done {
			if opt.Counters != nil {
				opt.Counters(agg, paths, steps)
			}
			return results, nil
		}
	}
}

// finishBatch stamps shared cost accounting onto partially filled results
// before an early (error) return.
func finishBatch(results []mc.Result, steps, paths int64, began time.Time) {
	for i := range results {
		results[i].Steps = steps
		results[i].Paths = paths
		results[i].Elapsed = telemetry.Since(began)
	}
}
