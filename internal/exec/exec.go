// Package exec is the pluggable execution seam between the query-serving
// layers and the machines that simulate root paths.
//
// The paper observes (§3.1) that MLSS root paths are independent and
// "straightforward to parallelize on a group of machines". This package
// turns that observation into one narrow contract: an Executor simulates
// a root-path range [lo, hi) with g-MLSS bookkeeping and returns
// mergeable counters. Everything above the seam — the one-shot query
// runner (internal/serve), the standing-query maintenance engine
// (internal/stream), the durcluster coordinator — is written against the
// contract and cannot tell a laptop from a cluster; everything below it
// is a placement decision.
//
// Two backends implement the contract. Local runs in-process over the
// parallel forEachRoot driver of internal/core. Cluster fans the range
// out over net/rpc workers (internal/cluster), retiring dead workers and
// retrying their chunks on the survivors.
//
// The determinism invariant both backends uphold: root path i draws from
// PRNG substream i of the task seed regardless of where it is simulated,
// bootstrap groups cover fixed windows of rootsPerGroup consecutive root
// indices, and results merge in root-index order. Floating-point addition
// is not associative, so the fixed grouping and merge order are load-
// bearing — they are what makes a sharded run bit-for-bit equal to a
// single-machine run at the same seed, which in turn is what makes the
// backends interchangeable under test.
package exec

import (
	"context"
	"errors"

	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
)

// Task is one fully resolved g-MLSS sampling assignment: the model, the
// observable, the threshold query and the level plan. It carries both the
// in-process form (Proc/Obs, used by the local backend and by coordinator-
// side estimation) and the wire form (Model/Observer names resolved
// against a worker registry, plus an optional Start snapshot) so one task
// runs unchanged on either backend.
type Task struct {
	Proc stochastic.Process  // the dynamics, simulated in-process by Local
	Obs  stochastic.Observer // the thresholded observable

	Model    string // registry name remote workers rebuild the model from
	Observer string // registry observer name (empty selects "value")

	// Start optionally pins simulations to a live-state snapshot instead
	// of the model's canonical initial state — the standing-query refresh
	// path. Remote execution gob-encodes it, so the concrete State type
	// must be registered (internal/stochastic registers the plain-data
	// ones).
	Start stochastic.State

	Beta       float64
	Horizon    int
	Boundaries []float64 // the level plan
	Ratio      int
	// Ratios optionally overrides Ratio per landing level (len must be
	// len(Boundaries) when set) — the covering plans of the batch
	// answering path carry their designed per-level ratios here. Part of
	// the numerics: both backends must apply it identically.
	Ratios     []int
	Seed       uint64
	SimWorkers int // in-process parallelism (Local; workers use their own)
}

func (t *Task) validate() error {
	if t.Beta <= 0 {
		return errors.New("exec: task threshold must be positive")
	}
	if t.Horizon <= 0 {
		return errors.New("exec: task horizon must be positive")
	}
	if t.Ratio < 1 {
		return errors.New("exec: task splitting ratio must be >= 1")
	}
	return nil
}

// Executor simulates root-path ranges of a task. Implementations must
// uphold the package's determinism invariant: the returned ShardResult's
// Groups cover consecutive rootsPerGroup-sized windows of [lo, hi) in
// root-index order, and Agg is their in-order sum, so the result is a
// pure function of (task, lo, hi, rootsPerGroup) — independent of worker
// count, placement and scheduling.
type Executor interface {
	// RunRoots simulates root paths [lo, hi) with g-MLSS bookkeeping and
	// returns their mergeable counters, grouped for bootstrap resampling.
	RunRoots(ctx context.Context, t Task, lo, hi int64, rootsPerGroup int) (core.ShardResult, error)
	// Name identifies the backend in stats and logs.
	Name() string
}

// Local is the in-process backend: the task's own process simulated over
// the parallel root driver of internal/core, exactly as the single-
// machine samplers do.
type Local struct{}

// Name implements Executor.
func (Local) Name() string { return "local" }

// RunRoots implements Executor.
func (Local) RunRoots(ctx context.Context, t Task, lo, hi int64, rootsPerGroup int) (core.ShardResult, error) {
	if err := t.validate(); err != nil {
		return core.ShardResult{}, err
	}
	if t.Proc == nil {
		return core.ShardResult{}, errors.New("exec: local backend needs the task's process")
	}
	if t.Obs == nil {
		return core.ShardResult{}, errors.New("exec: local backend needs the task's observer")
	}
	proc := t.Proc
	if t.Start != nil {
		proc = stochastic.Pin(proc, t.Start)
	}
	plan, err := core.NewPlan(t.Boundaries...)
	if err != nil {
		return core.ShardResult{}, err
	}
	g := &core.GMLSS{
		Proc:    proc,
		Query:   core.Query{Value: core.ThresholdValue(t.Obs, t.Beta), Horizon: t.Horizon},
		Plan:    plan,
		Ratio:   t.Ratio,
		Ratios:  t.Ratios,
		Stop:    mc.Budget{Steps: 1}, // unused by RunRootsBy; validate() wants a rule
		Seed:    t.Seed,
		Workers: t.SimWorkers,
	}
	return g.RunRootsBy(ctx, lo, hi, rootsPerGroup)
}
