package exec

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"durability/internal/cluster"
	"durability/internal/core"
	"durability/internal/mc"
	"durability/internal/stochastic"
	"durability/internal/telemetry"
)

func chainRegistry() cluster.Registry {
	return cluster.Registry{
		"chain": func() (stochastic.Process, map[string]stochastic.Observer, error) {
			return stochastic.BirthDeathChain(10, 0.45, 0), map[string]stochastic.Observer{"value": stochastic.ChainIndex}, nil
		},
	}
}

func chainTask() Task {
	return Task{
		Proc:       stochastic.BirthDeathChain(10, 0.45, 0),
		Obs:        stochastic.ChainIndex,
		Model:      "chain",
		Beta:       7,
		Horizon:    50,
		Boundaries: []float64{3.0 / 7, 5.0 / 7},
		Ratio:      3,
		Seed:       7,
	}
}

// startWorkers spins n in-process rpc workers on loopback listeners.
func startWorkers(t *testing.T, reg cluster.Registry, n int) []string {
	t.Helper()
	addrs, stop, err := cluster.ServeLocal(reg, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return addrs
}

// slammingListener returns the address of a "worker" that accepts
// connections and slams them shut: the dial succeeds, so the executor
// counts it as a member, but every call fails — a machine dropping right
// after the query starts.
func slammingListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return ln.Addr().String()
}

// The seam's contract: the cluster backend is bit-for-bit the local
// backend at the same seed — same estimate, same variance, same cost —
// no matter how many workers the range was sharded across.
func TestClusterBackendMatchesLocalBitForBit(t *testing.T) {
	addrs := startWorkers(t, chainRegistry(), 3)
	task := chainTask()
	opt := SampleOptions{Stop: mc.Budget{Steps: 400_000}}

	local, err := Sample(context.Background(), Local{}, task, opt)
	if err != nil {
		t.Fatal(err)
	}
	backend := NewCluster(addrs...)
	defer backend.Close()
	clus, err := Sample(context.Background(), backend, task, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clus.P != local.P || clus.Variance != local.Variance {
		t.Fatalf("cluster (P=%v, Var=%v) differs from local (P=%v, Var=%v)",
			clus.P, clus.Variance, local.P, local.Variance)
	}
	if clus.Steps != local.Steps || clus.Paths != local.Paths || clus.Hits != local.Hits {
		t.Fatalf("cluster cost (%d steps, %d paths, %d hits) differs from local (%d, %d, %d)",
			clus.Steps, clus.Paths, clus.Hits, local.Steps, local.Paths, local.Hits)
	}
	if local.P <= 0 {
		t.Fatalf("degenerate estimate %v", local.P)
	}
}

// Worker count must not leak into the numerics: 1, 2 and 3 workers all
// produce the same result.
func TestClusterBackendInvariantToWorkerCount(t *testing.T) {
	reg := chainRegistry()
	task := chainTask()
	opt := SampleOptions{Stop: mc.Budget{Steps: 200_000}}
	var first mc.Result
	for i, n := range []int{1, 2, 3} {
		backend := NewCluster(startWorkers(t, reg, n)...)
		res, err := Sample(context.Background(), backend, task, opt)
		backend.Close()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.P != first.P || res.Paths != first.Paths || res.Steps != first.Steps {
			t.Fatalf("%d workers: (P=%v, paths=%d, steps=%d) differs from 1 worker (P=%v, paths=%d, steps=%d)",
				n, res.P, res.Paths, res.Steps, first.P, first.Paths, first.Steps)
		}
	}
}

// The quality-targeted path must land near the chain's exact hitting
// probability.
func TestClusterBackendMatchesExactAnswer(t *testing.T) {
	const beta, horizon = 7.0, 50
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	target := map[int]bool{}
	for i := int(beta); i < 10; i++ {
		target[i] = true
	}
	exact := chain.HitProbability(target, horizon)

	backend := NewCluster(startWorkers(t, chainRegistry(), 3)...)
	defer backend.Close()
	res, err := Sample(context.Background(), backend, chainTask(), SampleOptions{
		Stop: mc.Any{mc.RETarget{Target: 0.1}, mc.Budget{Steps: 20_000_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.P-exact) > 0.25*exact {
		t.Fatalf("cluster estimate %v, exact %v", res.P, exact)
	}
	if res.Steps == 0 || res.Paths == 0 || res.Hits == 0 {
		t.Fatalf("accounting missing: %+v", res)
	}
}

// A worker dropping mid-run must not fail (or hang) the query: the
// executor marks it dead and retries its chunk on a live worker — and
// because root ranges travel with the chunk, the answer is unchanged.
func TestClusterBackendDeadWorkerRetries(t *testing.T) {
	healthy := startWorkers(t, chainRegistry(), 1)
	task := chainTask()
	opt := SampleOptions{Stop: mc.Budget{Steps: 400_000}}

	local, err := Sample(context.Background(), Local{}, task, opt)
	if err != nil {
		t.Fatal(err)
	}
	backend := NewCluster(healthy[0], slammingListener(t))
	defer backend.Close()
	done := make(chan error, 1)
	var clus mc.Result
	go func() {
		var err error
		clus, err = Sample(context.Background(), backend, task, opt)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("executor failed instead of retrying on the live worker: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("executor hung after worker drop")
	}
	if clus.P != local.P || clus.Steps != local.Steps || clus.Paths != local.Paths {
		t.Fatalf("result after retry (P=%v, steps=%d) differs from local (P=%v, steps=%d)",
			clus.P, clus.Steps, local.P, local.Steps)
	}
}

// Losing every worker is an error, not a hang.
func TestClusterBackendAllWorkersDead(t *testing.T) {
	backend := NewCluster(slammingListener(t))
	defer backend.Close()
	done := make(chan error, 1)
	go func() {
		_, err := Sample(context.Background(), backend, chainTask(), SampleOptions{Stop: mc.Budget{Steps: 1000}})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("executor succeeded with no live workers")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("executor hung with no live workers")
	}
}

// An unreachable address fails the dial, which is retried like a dead
// worker; with a healthy peer present the query still completes. The
// attached worker metrics must attribute the simulated work to the
// worker that performed it: the unreachable address books its failed
// calls but zero roots and steps, never the chunk ranges it was
// assigned and could not run.
func TestClusterBackendUndialableWorker(t *testing.T) {
	healthy := startWorkers(t, chainRegistry(), 1)
	backend := NewCluster("127.0.0.1:1", healthy[0])
	backend.Metrics = telemetry.NewWorkerMetrics(nil)
	defer backend.Close()
	res, err := Sample(context.Background(), backend, chainTask(), SampleOptions{Stop: mc.Budget{Steps: 100_000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths == 0 {
		t.Fatalf("no work accounted: %+v", res)
	}
	dead := backend.Metrics.Worker("127.0.0.1:1")
	live := backend.Metrics.Worker(healthy[0])
	if dead.Calls() == 0 || dead.Errors() != dead.Calls() {
		t.Errorf("unreachable worker calls=%d errors=%d, want every call an error", dead.Calls(), dead.Errors())
	}
	if dead.Roots() != 0 || dead.Steps() != 0 {
		t.Errorf("unreachable worker booked roots=%d steps=%d, want 0/0 (it performed no work)", dead.Roots(), dead.Steps())
	}
	if live.Roots() == 0 || live.Steps() == 0 || live.Errors() != 0 {
		t.Errorf("healthy worker roots=%d steps=%d errors=%d, want all the work and no errors", live.Roots(), live.Steps(), live.Errors())
	}
}

func TestSampleValidation(t *testing.T) {
	ctx := context.Background()
	task := chainTask()
	if _, err := Sample(ctx, Local{}, task, SampleOptions{}); err == nil {
		t.Error("missing stop rule accepted")
	}
	noProc := task
	noProc.Proc = nil
	if _, err := Sample(ctx, Local{}, noProc, SampleOptions{Stop: mc.Budget{Steps: 1}}); err == nil {
		t.Error("missing process accepted")
	}
	badPlan := task
	badPlan.Boundaries = []float64{2.5}
	if _, err := Sample(ctx, Local{}, badPlan, SampleOptions{Stop: mc.Budget{Steps: 1}}); err == nil {
		t.Error("invalid boundaries accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Sample(cancelled, Local{}, task, SampleOptions{Stop: mc.Budget{Steps: 1 << 50}}); err == nil {
		t.Error("cancelled context not surfaced")
	}
}

// The cluster backend refuses tasks it cannot place: no registry model
// name, or no live workers at all.
func TestClusterBackendValidation(t *testing.T) {
	backend := NewCluster()
	defer backend.Close()
	task := chainTask()
	if _, err := backend.RunRoots(context.Background(), task, 0, 64, 16); err == nil {
		t.Error("empty worker set accepted")
	}
	noModel := task
	noModel.Model = ""
	two := NewCluster("127.0.0.1:1")
	defer two.Close()
	if _, err := two.RunRoots(context.Background(), noModel, 0, 64, 16); err == nil {
		t.Error("missing model name accepted")
	}
}

// A worker that hangs (accepts calls, never replies) must not pin the
// query forever: the context bounds every in-flight rpc, and
// cancellation cuts the worker's connection.
func TestClusterBackendHungWorkerCancellable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow the request and never answer.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	backend := NewCluster(ln.Addr().String())
	defer backend.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	began := time.Now()
	_, err = backend.RunRoots(ctx, chainTask(), 0, 64, 16)
	if err == nil {
		t.Fatal("hung worker produced a result")
	}
	if waited := time.Since(began); waited > 10*time.Second {
		t.Fatalf("cancellation took %v; the hung call was not cut off", waited)
	}
}

// A failed worker must re-enter the rotation after its cool-down — the
// executor lives as long as the daemon, so one blip cannot retire a
// machine forever — and the revived roster must not move the answer.
func TestClusterBackendDeadWorkerRevives(t *testing.T) {
	reg := chainRegistry()
	healthy := startWorkers(t, reg, 1)

	// Reserve an address, then close the listener: the first dial fails
	// and the worker is retired.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	downAddr := ln.Addr().String()
	ln.Close()

	backend := NewCluster(downAddr, healthy[0])
	backend.RetryDead = time.Millisecond
	defer backend.Close()
	task := chainTask()

	first, err := backend.RunRoots(context.Background(), task, 0, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	backend.mu.Lock()
	retired := !backend.deadSince[0].IsZero()
	backend.mu.Unlock()
	if !retired {
		t.Fatal("undialable worker was not retired")
	}

	// The machine comes back on the same address; after the cool-down it
	// must rejoin the rotation.
	ln2, err := net.Listen("tcp", downAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", downAddr, err)
	}
	t.Cleanup(func() { ln2.Close() })
	cluster.Serve(cluster.NewWorker(reg, 1), ln2)
	time.Sleep(5 * time.Millisecond)

	second, err := backend.RunRoots(context.Background(), task, 0, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	backend.mu.Lock()
	revived := backend.deadSince[0].IsZero()
	backend.mu.Unlock()
	if !revived {
		t.Fatal("worker did not rejoin the rotation after its cool-down")
	}
	local, err := Local{}.RunRoots(context.Background(), task, 0, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	lp := core.EstimateFromCounters(local.Agg, local.Roots, 3, 0)
	if fp := core.EstimateFromCounters(first.Agg, first.Roots, 3, 0); fp != lp {
		t.Fatalf("degraded-fleet result %v differs from local %v", fp, lp)
	}
	if sp := core.EstimateFromCounters(second.Agg, second.Roots, 3, 0); sp != lp {
		t.Fatalf("revived-fleet result %v differs from local %v", sp, lp)
	}
}

// A bad request — one the worker's handler rejects — must neither retire
// healthy workers nor be retried across the fleet: the same request
// fails identically everywhere, and poisoning the roster would take down
// every other query sharing the executor for the cool-down.
func TestClusterBackendBadRequestDoesNotPoisonFleet(t *testing.T) {
	backend := NewCluster(startWorkers(t, chainRegistry(), 2)...)
	defer backend.Close()

	unknown := chainTask()
	unknown.Model = "no-such-model"
	if _, err := backend.RunRoots(context.Background(), unknown, 0, 64, 16); err == nil {
		t.Fatal("unknown model accepted")
	}
	backend.mu.Lock()
	for i, since := range backend.deadSince {
		if !since.IsZero() {
			backend.mu.Unlock()
			t.Fatalf("worker %d retired by a request-level error", i)
		}
	}
	backend.mu.Unlock()

	// The fleet still serves valid work, immediately.
	res, err := backend.RunRoots(context.Background(), chainTask(), 0, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Roots != 64 {
		t.Fatalf("valid request after bad one returned %d roots", res.Roots)
	}
}

// A start state whose type gob cannot ship must be rejected before any
// worker is contacted — the client-side encode failure would otherwise
// read as a dead connection and poison the fleet.
func TestClusterBackendRejectsUntransportableState(t *testing.T) {
	backend := NewCluster(startWorkers(t, chainRegistry(), 1)...)
	defer backend.Close()

	task := chainTask()
	task.Start = &stochastic.ARState{} // unexported fields; not gob-registered
	if _, err := backend.RunRoots(context.Background(), task, 0, 64, 16); err == nil {
		t.Fatal("untransportable start state accepted")
	}
	backend.mu.Lock()
	retired := !backend.deadSince[0].IsZero()
	backend.mu.Unlock()
	if retired {
		t.Fatal("worker retired by a client-side encode failure")
	}
	if _, err := backend.RunRoots(context.Background(), chainTask(), 0, 64, 16); err != nil {
		t.Fatalf("fleet unusable after rejected task: %v", err)
	}
}
