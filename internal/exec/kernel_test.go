package exec

import (
	"context"
	"testing"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// TestClusterKernelMatchesScalarLocal pins the vectorized kernel's
// equality invariant across the execution seam: cluster workers
// instantiate the registered model and take the bulk fast path, while
// the local baseline is forced onto the scalar recursion with
// stochastic.ScalarOnly. The two must agree bit-for-bit — the same
// invariant the in-core differential suite checks, here proven through
// RPC sharding, gob transport, and the coordinator's merge order.
func TestClusterKernelMatchesScalarLocal(t *testing.T) {
	addrs := startWorkers(t, chainRegistry(), 3)
	task := chainTask()
	opt := SampleOptions{Stop: mc.Budget{Steps: 300_000}}

	scalarTask := task
	scalarTask.Proc = stochastic.ScalarOnly(task.Proc)
	scalar, err := Sample(context.Background(), Local{}, scalarTask, opt)
	if err != nil {
		t.Fatal(err)
	}

	backend := NewCluster(addrs...)
	defer backend.Close()
	bulk, err := Sample(context.Background(), backend, task, opt)
	if err != nil {
		t.Fatal(err)
	}

	if bulk.P != scalar.P || bulk.Variance != scalar.Variance {
		t.Fatalf("cluster bulk (P=%v, Var=%v) differs from scalar local (P=%v, Var=%v)",
			bulk.P, bulk.Variance, scalar.P, scalar.Variance)
	}
	if bulk.Steps != scalar.Steps || bulk.Paths != scalar.Paths || bulk.Hits != scalar.Hits {
		t.Fatalf("cluster bulk cost (%d steps, %d paths, %d hits) differs from scalar local (%d, %d, %d)",
			bulk.Steps, bulk.Paths, bulk.Hits, scalar.Steps, scalar.Paths, scalar.Hits)
	}
	if scalar.Hits == 0 {
		t.Fatal("degenerate comparison: no hits")
	}
}
