package exec

import (
	"context"
	"math"
	"testing"
	"time"

	"durability/internal/mc"
	"durability/internal/stochastic"
)

// ladderTask is chainTask with per-level ratios set, as batch covering
// plans ship them: both boundaries are answerable thresholds.
func ladderTask() Task {
	t := chainTask()
	t.Ratios = []int{2, 3}
	return t
}

func ladderTargets(stop mc.StopRule) []BatchTarget {
	return []BatchTarget{
		{Level: 1, Stop: stop},
		{Level: 2, Stop: stop},
		{Level: 3, Stop: stop},
	}
}

// Golden determinism: a same-seed batch run must produce bit-for-bit
// identical per-threshold answers on the local backend and on 1-, 2- and
// 3-worker clusters — estimates, variances and cost accounting alike.
func TestSampleBatchLocalVsClusterGolden(t *testing.T) {
	task := ladderTask()
	opt := SampleOptions{Stop: mc.Budget{Steps: 400_000}}
	stop := mc.Budget{Steps: 400_000}

	local, err := SampleBatch(context.Background(), Local{}, task, ladderTargets(stop), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 3 {
		t.Fatalf("%d results for 3 targets", len(local))
	}
	for n := 1; n <= 3; n++ {
		backend := NewCluster(startWorkers(t, chainRegistry(), n)...)
		clus, err := SampleBatch(context.Background(), backend, task, ladderTargets(stop), opt)
		backend.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range local {
			if clus[i].P != local[i].P || clus[i].Variance != local[i].Variance {
				t.Fatalf("%d workers, target %d: (P=%v, Var=%v) differs from local (P=%v, Var=%v)",
					n, i, clus[i].P, clus[i].Variance, local[i].P, local[i].Variance)
			}
			if clus[i].Steps != local[i].Steps || clus[i].Paths != local[i].Paths || clus[i].Hits != local[i].Hits {
				t.Fatalf("%d workers, target %d: cost (%d steps, %d paths, %d hits) differs from local (%d, %d, %d)",
					n, i, clus[i].Steps, clus[i].Paths, clus[i].Hits, local[i].Steps, local[i].Paths, local[i].Hits)
			}
		}
	}
	// Sanity: the lattice is genuinely multi-threshold — strictly easier
	// thresholds estimate strictly higher here.
	if !(local[0].P > local[1].P && local[1].P > local[2].P && local[2].P > 0) {
		t.Fatalf("degenerate lattice estimates: %v %v %v", local[0].P, local[1].P, local[2].P)
	}
}

// A worker dying mid-batch must cost a retry, not the answers: with one
// worker slamming connections shut, the batch still returns bit-for-bit
// the local results.
func TestSampleBatchSurvivesDeadWorker(t *testing.T) {
	task := ladderTask()
	opt := SampleOptions{Stop: mc.Budget{Steps: 400_000}}
	stop := mc.Budget{Steps: 400_000}

	local, err := SampleBatch(context.Background(), Local{}, task, ladderTargets(stop), opt)
	if err != nil {
		t.Fatal(err)
	}
	healthy := startWorkers(t, chainRegistry(), 1)
	backend := NewCluster(healthy[0], slammingListener(t))
	defer backend.Close()
	done := make(chan error, 1)
	var clus []mc.Result
	go func() {
		var err error
		clus, err = SampleBatch(context.Background(), backend, task, ladderTargets(stop), opt)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("batch failed instead of retrying on the live worker: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("batch hung after worker drop")
	}
	for i := range local {
		if clus[i].P != local[i].P || clus[i].Steps != local[i].Steps || clus[i].Paths != local[i].Paths {
			t.Fatalf("target %d after retry (P=%v, steps=%d) differs from local (P=%v, steps=%d)",
				i, clus[i].P, clus[i].Steps, local[i].P, local[i].Steps)
		}
	}
}

// Quality-targeted batches stop when every threshold meets its target,
// and the easy thresholds' answers still track the exact chain values.
func TestSampleBatchQualityTargets(t *testing.T) {
	const horizon = 50
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	exactFor := func(beta int) float64 {
		target := map[int]bool{}
		for i := beta; i < 10; i++ {
			target[i] = true
		}
		return chain.HitProbability(target, horizon)
	}
	task := ladderTask()
	stop := mc.Any{mc.RETarget{Target: 0.1}, mc.Budget{Steps: 20_000_000}}
	res, err := SampleBatch(context.Background(), Local{}, task, ladderTargets(stop), SampleOptions{Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	for i, beta := range []int{3, 5, 7} {
		want := exactFor(beta)
		if math.Abs(res[i].P-want) > 0.25*want {
			t.Errorf("beta %d: estimate %v, exact %v", beta, res[i].P, want)
		}
		if res[i].Hits == 0 || res[i].Steps == 0 {
			t.Errorf("beta %d: accounting missing: %+v", beta, res[i])
		}
	}
}

func TestSampleBatchValidation(t *testing.T) {
	ctx := context.Background()
	task := ladderTask()
	stop := mc.Budget{Steps: 1000}
	if _, err := SampleBatch(ctx, Local{}, task, nil, SampleOptions{}); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := SampleBatch(ctx, Local{}, task, []BatchTarget{{Level: 1}}, SampleOptions{}); err == nil {
		t.Error("target without stop rule accepted")
	}
	for _, lvl := range []int{0, 4} {
		if _, err := SampleBatch(ctx, Local{}, task, []BatchTarget{{Level: lvl, Stop: stop}}, SampleOptions{}); err == nil {
			t.Errorf("out-of-range target level %d accepted", lvl)
		}
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := SampleBatch(cancelled, Local{}, task, ladderTargets(stop), SampleOptions{}); err == nil {
		t.Error("cancelled context not surfaced")
	}
}
