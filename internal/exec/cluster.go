package exec

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"durability/internal/cluster"
	"durability/internal/core"
	"durability/internal/telemetry"
)

// Default fault-handling knobs for a Cluster.
const (
	// DefaultDialTimeout bounds one connection attempt to a worker.
	DefaultDialTimeout = 5 * time.Second
	// DefaultRetryDead is how long a failed worker sits out before the
	// executor tries it again. A Cluster lives as long as the daemon
	// mounting it, so retirement must not be permanent: a worker blip
	// (deploy restart, one connection reset) costs one cool-down, not
	// the fleet member forever.
	DefaultRetryDead = 30 * time.Second
	// abandonedClientGrace is how long an orphaned connection (one whose
	// caller's context ended mid-call) lives before it is reaped. Sibling
	// calls multiplexed on it finish normally well within the grace; a
	// connection to a genuinely hung worker is closed when it expires.
	abandonedClientGrace = 2 * time.Minute
)

// Cluster is the distributed backend: root ranges are cut into group-
// aligned chunks, fanned out over the net/rpc workers of internal/cluster
// and merged back in root-index order. A worker that fails a call is
// marked dead and its chunk is retried on the survivors; because root
// ranges travel with the request, a retried chunk simulates exactly the
// substreams the dead worker was assigned and the merged result is
// unchanged. Dead workers re-enter the rotation after RetryDead — worker
// membership affects only placement, never numerics, so the roster can
// flap freely without moving an answer.
//
// A Cluster is safe for concurrent use — the serving layer issues
// RunRoots calls from many queries and stream refreshes at once, and
// rpc.Client multiplexes concurrent calls over one connection.
type Cluster struct {
	addrs []string

	// DialTimeout bounds each connection attempt (default
	// DefaultDialTimeout); RetryDead is the dead-worker cool-down
	// (default DefaultRetryDead; negative retires failed workers for the
	// executor's lifetime). Set them before first use.
	DialTimeout time.Duration
	RetryDead   time.Duration

	// Metrics, when non-nil, receives per-worker shard attribution: one
	// Record per chunk call, keyed by worker address. Telemetry only —
	// it never influences placement, retries or the merged result.
	Metrics *telemetry.WorkerMetrics

	mu        sync.Mutex
	clients   []*rpc.Client
	deadSince []time.Time // zero = in rotation
}

// NewCluster builds the distributed backend over the given worker
// addresses. Connections are dialed lazily on first use; a worker that
// cannot be dialed is treated like one that died mid-call.
func NewCluster(addrs ...string) *Cluster {
	return &Cluster{
		addrs:       append([]string(nil), addrs...),
		DialTimeout: DefaultDialTimeout,
		RetryDead:   DefaultRetryDead,
		clients:     make([]*rpc.Client, len(addrs)),
		deadSince:   make([]time.Time, len(addrs)),
	}
}

// Name implements Executor.
func (c *Cluster) Name() string { return fmt.Sprintf("cluster(%d workers)", len(c.addrs)) }

// Close releases every dialed connection.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cl := range c.clients {
		if cl != nil {
			cl.Close()
			c.clients[i] = nil
		}
	}
}

// alive snapshots the indices of workers in rotation, returning workers
// whose dead cool-down has elapsed to the roster.
func (c *Cluster) alive() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i := range c.addrs {
		if !c.deadSince[i].IsZero() {
			if c.RetryDead < 0 || telemetry.Since(c.deadSince[i]) < c.RetryDead {
				continue
			}
			c.deadSince[i] = time.Time{} // cool-down over: back in rotation
		}
		out = append(out, i)
	}
	return out
}

// client returns the connection to worker idx, dialing outside the lock
// so one black-holed address cannot stall calls to healthy workers. The
// dial respects both DialTimeout and the caller's context, so a query
// already past its deadline never waits out a connection attempt.
func (c *Cluster) client(ctx context.Context, idx int) (*rpc.Client, error) {
	c.mu.Lock()
	if cl := c.clients[idx]; cl != nil {
		c.mu.Unlock()
		return cl, nil
	}
	c.mu.Unlock()

	dialer := net.Dialer{Timeout: c.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", c.addrs[idx])
	if err != nil {
		return nil, err
	}
	cl := rpc.NewClient(conn)
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing := c.clients[idx]; existing != nil {
		// A concurrent caller won the dial race; keep its connection.
		cl.Close()
		return existing, nil
	}
	c.clients[idx] = cl
	return cl, nil
}

// markDead takes a worker out of rotation and closes its connection,
// which also unblocks any call still pending on it.
func (c *Cluster) markDead(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadSince[idx] = telemetry.Now()
	if c.clients[idx] != nil {
		c.clients[idx].Close()
		c.clients[idx] = nil
	}
}

// abandonClient detaches worker idx's connection without closing it —
// used when the caller's context, not the worker, ended the exchange.
// The worker stays in rotation and the next call redials; calls from
// other queries still pending on the old connection complete normally
// (closing it here would fail them collaterally and cascade into
// retirements of a healthy worker). The orphan is reaped after a grace
// period, which is what finally severs a genuinely hung machine.
func (c *Cluster) abandonClient(idx int, cl *rpc.Client) {
	c.mu.Lock()
	if c.clients[idx] == cl {
		c.clients[idx] = nil
	}
	c.mu.Unlock()
	time.AfterFunc(abandonedClientGrace, func() { cl.Close() })
}

// isRequestError reports whether a call failed inside the worker's
// handler — the transport and the worker are healthy, the request itself
// is at fault (unknown model or observer, invalid plan, unregistered
// state type). Such failures must neither retire the worker nor be
// retried elsewhere: the same request fails on every machine.
func isRequestError(err error) bool {
	var srvErr rpc.ServerError
	return errors.As(err, &srvErr)
}

// call runs one shard request on worker idx; any failure retires the
// worker. The context bounds the whole call: a worker that hangs rather
// than crashes is cut off (its connection closed) as soon as ctx ends,
// so a stuck machine cannot pin a serving slot forever.
func (c *Cluster) call(ctx context.Context, idx int, req cluster.ShardRequest) (res core.ShardResult, err error) {
	began := telemetry.Now()
	var workerNanos int64
	defer func() {
		// res is the zero ShardResult on failure, so a failed attempt books
		// the call, the error and its round-trip, but no roots or steps —
		// the per-worker work series count only simulation the worker
		// actually performed, and a retried chunk's work lands once, on the
		// worker that completed it.
		c.Metrics.Worker(c.addrs[idx]).Record(
			telemetry.Since(began), workerNanos, res.Steps, res.Roots, err)
	}()
	cl, err := c.client(ctx, idx)
	if err != nil {
		if ctx.Err() != nil {
			// Our deadline interrupted the dial; the worker is not at fault.
			return core.ShardResult{}, ctx.Err()
		}
		c.markDead(idx)
		return core.ShardResult{}, err
	}
	var reply cluster.ShardReply
	pending := cl.Go("Worker.Run", req, &reply, make(chan *rpc.Call, 1))
	select {
	case done := <-pending.Done:
		if done.Error != nil {
			if !isRequestError(done.Error) {
				c.markDead(idx)
			}
			return core.ShardResult{}, done.Error
		}
		workerNanos = reply.WorkerNanos
		return reply.Result, nil
	case <-ctx.Done():
		// Our deadline, not necessarily the worker's fault: detach from
		// the connection so a genuinely hung machine cannot pin this
		// slot, but leave the worker in rotation for the next caller.
		c.abandonClient(idx, cl)
		return core.ShardResult{}, ctx.Err()
	}
}

// retry reassigns a failed chunk to the remaining live workers, one by
// one, retiring each that fails in turn.
func (c *Cluster) retry(ctx context.Context, req cluster.ShardRequest, lastErr error) (core.ShardResult, error) {
	for _, idx := range c.alive() {
		if err := ctx.Err(); err != nil {
			return core.ShardResult{}, err
		}
		r, err := c.call(ctx, idx, req)
		if err == nil {
			return r, nil
		}
		if isRequestError(err) {
			return core.ShardResult{}, err
		}
		lastErr = err
	}
	return core.ShardResult{}, fmt.Errorf("exec: chunk [%d,%d) failed on every live worker: %w",
		req.RootLo, req.RootHi, lastErr)
}

// RunRoots implements Executor: the range is cut into chunks whose
// boundaries fall on multiples of rootsPerGroup, one chunk per live
// worker, so every worker's bootstrap groups are exactly the windows the
// local backend would have produced, and concatenating chunk results in
// range order reproduces the single-machine result bit for bit.
func (c *Cluster) RunRoots(ctx context.Context, t Task, lo, hi int64, rootsPerGroup int) (core.ShardResult, error) {
	if err := t.validate(); err != nil {
		return core.ShardResult{}, err
	}
	if hi <= lo {
		return core.ShardResult{}, errors.New("exec: empty root range")
	}
	if t.Model == "" {
		return core.ShardResult{}, errors.New("exec: cluster backend needs the task's registry model name")
	}
	if rootsPerGroup < 1 {
		rootsPerGroup = 1
	}
	plan, err := core.NewPlan(t.Boundaries...)
	if err != nil {
		return core.ShardResult{}, err
	}
	// A start state whose concrete type gob cannot ship fails on the
	// client side of the rpc write, which net/rpc reports like a dead
	// connection. Probe the encoding upfront so a deterministic bad task
	// is rejected here — never retiring workers or cascading through the
	// retry loop, which would poison the shared fleet for every caller.
	if t.Start != nil {
		if err := gob.NewEncoder(io.Discard).Encode(&cluster.ShardRequest{Start: t.Start}); err != nil {
			return core.ShardResult{}, fmt.Errorf("exec: task start state is not transportable: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return core.ShardResult{}, err
	}

	workers := c.alive()
	if len(workers) == 0 {
		return core.ShardResult{}, errors.New("exec: no live workers remain")
	}
	n := hi - lo
	per := (n + int64(len(workers)) - 1) / int64(len(workers))
	if rem := per % int64(rootsPerGroup); rem != 0 {
		per += int64(rootsPerGroup) - rem
	}
	req := func(clo, chi int64) cluster.ShardRequest {
		return cluster.ShardRequest{
			Model:      t.Model,
			Observer:   t.Observer,
			Start:      t.Start,
			Beta:       t.Beta,
			Horizon:    t.Horizon,
			Boundaries: t.Boundaries,
			Ratio:      t.Ratio,
			Ratios:     t.Ratios,
			Seed:       t.Seed,
			RootLo:     clo,
			RootHi:     chi,
			GroupRoots: rootsPerGroup,
		}
	}
	type chunk struct {
		req    cluster.ShardRequest
		result core.ShardResult
		err    error
	}
	var chunks []*chunk
	for clo := lo; clo < hi; clo += per {
		chi := clo + per
		if chi > hi {
			chi = hi
		}
		chunks = append(chunks, &chunk{req: req(clo, chi)})
	}

	var wg sync.WaitGroup
	for i, ch := range chunks {
		wg.Add(1)
		go func(idx int, ch *chunk) {
			defer wg.Done()
			ch.result, ch.err = c.call(ctx, idx, ch.req)
		}(workers[i], ch)
	}
	wg.Wait()

	// Retry every failed chunk serially on the survivors — except chunks
	// the workers rejected as bad requests, which would fail identically
	// everywhere. A failure here means no live worker could run it.
	for _, ch := range chunks {
		if ch.err == nil {
			continue
		}
		if isRequestError(ch.err) {
			return core.ShardResult{}, ch.err
		}
		ch.result, ch.err = c.retry(ctx, ch.req, ch.err)
		if ch.err != nil {
			return core.ShardResult{}, ch.err
		}
	}

	// Merge in range order, rebuilding the aggregate as the in-order sum
	// of the groups — the exact fold RunRootsBy performs locally. This
	// merged aggregate is also what the coordinator books into the
	// plan-quality ledger (exec.SampleOptions.Counters), so cluster-side
	// crossing statistics equal the local backend's to the last bit.
	out := core.ShardResult{Agg: core.NewCounters(plan.M())}
	for _, ch := range chunks {
		out.Roots += ch.result.Roots
		out.Steps += ch.result.Steps
		for _, g := range ch.result.Groups {
			out.Agg.Add(g)
			out.Groups = append(out.Groups, g)
		}
	}
	return out, nil
}
