package durability

import (
	"context"
	"errors"
	"math"
	"testing"

	"durability/internal/exact"
	"durability/internal/stochastic"
)

// jumpChain builds a Markov chain that frequently skips levels (+4 jumps),
// the regime where only g-MLSS is unbiased; the exact answer is still
// computable by dynamic programming.
func jumpChain() *MarkovChain {
	const n = 15
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
		up, down, jump := 0.30, 0.55, 0.15
		hi := min(i+1, n-1)
		lo := max(i-1, 0)
		far := min(i+4, n-1)
		mat[i][hi] += up
		mat[i][lo] += down
		mat[i][far] += jump
	}
	chain, err := NewMarkovChain(mat, 0)
	if err != nil {
		panic(err)
	}
	return chain
}

func chainExact(chain *MarkovChain, beta float64, horizon, states int) float64 {
	target := map[int]bool{}
	for i := int(beta); i < states; i++ {
		target[i] = true
	}
	return chain.HitProbability(target, horizon)
}

// The statistical contract of the batch path: every threshold of a lattice
// answered by one shared splitting run is an unbiased estimate whose
// confidence interval covers the exact (dynamic-programming) answer — on
// a no-skip chain, on a chain that jumps across levels, and on a lattice
// walk whose exact answer is cross-validated through internal/exact.
// Per-query Run at the matched seed and quality target must agree too.
func TestRunBatchCoversExact(t *testing.T) {
	walk := stochastic.BirthDeathChain(20, 0.45, 2)
	cases := []struct {
		name    string
		proc    Process
		states  int
		betas   []float64
		horizon int
		seed    uint64
	}{
		// Thresholds are kept away from p ~ 1: a near-certain threshold is
		// answered by the first sampling round with a degenerate bootstrap
		// CI (per-query Run behaves identically), so coverage is only a
		// meaningful contract at moderate-to-rare probabilities — the
		// paper's regime.
		{name: "birth-death", proc: stochastic.BirthDeathChain(10, 0.45, 0), states: 10,
			betas: []float64{4, 5, 6, 7}, horizon: 50, seed: 11},
		{name: "jump-chain", proc: jumpChain(), states: 15,
			betas: []float64{10, 12}, horizon: 40, seed: 12},
		{name: "lattice-walk", proc: walk, states: 20,
			betas: []float64{6, 9, 12}, horizon: 80, seed: 13},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qs := make([]Query, len(tc.betas))
			for i, b := range tc.betas {
				qs[i] = Query{Z: ChainIndex, Beta: b, Horizon: tc.horizon, ZName: "chain"}
			}
			opts := []Option{WithRelativeErrorTarget(0.1), WithSeed(tc.seed)}
			batch, err := RunBatch(ctx, tc.proc, qs, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for i, b := range tc.betas {
				want := chainExact(tc.proc.(*MarkovChain), b, tc.horizon, tc.states)
				res := batch[i]
				if res.P <= 0 || res.Hits < 10 {
					t.Fatalf("beta %v: degenerate batch answer %+v", b, res)
				}
				ci := res.CI(0.999)
				if want < ci.Lo || want > ci.Hi {
					t.Errorf("beta %v: batch CI %v does not cover exact %v (p=%v)", b, ci, want, res.P)
				}

				// Independent per-query Run at the matched seed and target
				// must land on the same truth.
				solo, err := Run(ctx, tc.proc, qs[i], opts...)
				if err != nil {
					t.Fatal(err)
				}
				sci := solo.CI(0.999)
				if want < sci.Lo || want > sci.Hi {
					t.Errorf("beta %v: per-query CI %v does not cover exact %v", b, sci, want)
				}
				if diff := math.Abs(res.P - solo.P); diff > 5*(res.StdErr()+solo.StdErr()) {
					t.Errorf("beta %v: batch %v and per-query %v disagree beyond their joint error", b, res.P, solo.P)
				}
			}
			// One shared run answers the lattice: every result reports the
			// same joint cost, and estimates are monotone in the threshold
			// (a prefix product can only shrink as factors accumulate).
			for i := 1; i < len(batch); i++ {
				if batch[i].Steps != batch[0].Steps || batch[i].Paths != batch[0].Paths {
					t.Fatalf("results report different shared runs: %+v vs %+v", batch[i], batch[0])
				}
				if batch[i].P > batch[i-1].P {
					t.Fatalf("estimates not monotone in beta: P(%v)=%v > P(%v)=%v",
						tc.betas[i], batch[i].P, tc.betas[i-1], batch[i-1].P)
				}
			}
		})
	}

	// Cross-validate the lattice walk's ground truth through internal/exact:
	// the birth-death chain is exactly the clamped ±1 lattice walk.
	for _, beta := range []float64{6, 9, 12} {
		dp := chainExact(walk, beta, 80, 20)
		lat, err := exact.LatticeWalkHit(map[int]float64{+1: 0.45, -1: 0.55}, 2, int(beta), 80, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp-lat) > 1e-9 {
			t.Fatalf("beta %v: MarkovChain DP %v and exact.LatticeWalkHit %v disagree", beta, dp, lat)
		}
	}
}

// Duplicate thresholds and unordered ladders must answer positionally,
// with duplicates sharing one answer.
func TestRunBatchAlignsAndDedups(t *testing.T) {
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	qs := []Query{
		{Z: ChainIndex, Beta: 6, Horizon: 50, ZName: "chain"},
		{Z: ChainIndex, Beta: 3, Horizon: 50, ZName: "chain"},
		{Z: ChainIndex, Beta: 6, Horizon: 50, ZName: "chain"},
	}
	res, err := RunBatch(context.Background(), chain, qs, WithRelativeErrorTarget(0.15), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].P != res[2].P || res[0].Variance != res[2].Variance {
		t.Fatalf("duplicate thresholds diverged: %v vs %v", res[0].P, res[2].P)
	}
	if res[1].P <= res[0].P {
		t.Fatalf("lower threshold should have the larger estimate: P(3)=%v vs P(6)=%v", res[1].P, res[0].P)
	}
}

// Two queries whose ZNames alias but whose observer *functions* differ
// must not share a run: plan-cache aliasing only ever mis-tunes a plan,
// but a shared run simulates one observer for the whole group, so the
// grouping must split on the function value. Each answer has to track its
// own observer's exact value.
func TestRunManyAliasedObserversDoNotBatch(t *testing.T) {
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	doubled := func(s State) float64 { return 2 * ChainIndex(s) }
	qs := []Query{
		{Z: ChainIndex, Beta: 5, Horizon: 50, ZName: "obs"},
		{Z: doubled, Beta: 7, Horizon: 50, ZName: "obs"}, // effectively "state >= 3.5"
	}
	res, err := RunMany(context.Background(), chain, qs, WithRelativeErrorTarget(0.1), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	wantA := chainExact(chain, 5, 50, 10) // P(state >= 5)
	wantB := chainExact(chain, 4, 50, 10) // P(2*state >= 7) = P(state >= 4)
	if ci := res[0].CI(0.999); wantA < ci.Lo || wantA > ci.Hi {
		t.Errorf("observer A answered %v (CI %v), exact %v", res[0].P, ci, wantA)
	}
	if ci := res[1].CI(0.999); wantB < ci.Lo || wantB > ci.Hi {
		t.Errorf("observer B answered %v (CI %v), exact %v — aliased into A's run?", res[1].P, ci, wantB)
	}
}

// RunBatch is restricted to the configurations with a covering form.
func TestRunBatchRejectsIncompatibleOptions(t *testing.T) {
	chain := stochastic.BirthDeathChain(10, 0.45, 0)
	qs := []Query{
		{Z: ChainIndex, Beta: 3, Horizon: 50},
		{Z: ChainIndex, Beta: 5, Horizon: 50},
	}
	ctx := context.Background()
	for name, opts := range map[string][]Option{
		"srs":      {WithMethod(SRS)},
		"smlss":    {WithMethod(SMLSS)},
		"fixed":    {WithPlan(0.5)},
		"balanced": {WithBalancedLevels(0.01, 4)},
	} {
		if _, err := RunBatch(ctx, chain, qs, append(opts, WithBudget(1000))...); err == nil {
			t.Errorf("%s: RunBatch accepted an incompatible configuration", name)
		}
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := RunBatch(cancelled, chain, qs, WithBudget(1_000_000)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v, want context.Canceled", err)
	}
}

// The headline sharing claim of the batch path, on the threshold-ladder
// example's own scenario: answering a 10-threshold ladder with one shared
// splitting run must cost at least 5x fewer simulator invocations than
// answering each threshold with its own durability.Run at the same
// relative-error target (examples/threshold-ladder demonstrates the same
// numbers interactively; cmd/durbench records them in BENCH_serve.json).
func TestThresholdLadderBatchBeatsPerQuery(t *testing.T) {
	market := &GBM{S0: 100, Mu: 0.0003, Sigma: 0.01}
	const horizon = 250
	betas := make([]float64, 10)
	for i := range betas {
		betas[i] = 112 + 2*float64(i) // 112 .. 130
	}
	qs := make([]Query, len(betas))
	for i, b := range betas {
		qs[i] = Query{Z: ScalarValue, Beta: b, Horizon: horizon, ZName: "price"}
	}
	opts := []Option{WithRelativeErrorTarget(0.1), WithSeed(42)}
	ctx := context.Background()

	session, err := NewSession(market, opts...)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := session.RunBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	batchSteps := session.Stats().TotalSteps()

	var perQuery int64
	for i, q := range qs {
		res, err := Run(ctx, market, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		perQuery += res.Steps
		// Equal quality: both paths hit the same relative-error target.
		if batch[i].P <= 0 || batch[i].RelErr() > 0.1+1e-9 {
			t.Fatalf("beta %v: batch answer misses the quality target: %+v (relErr %v)", betas[i], batch[i], batch[i].RelErr())
		}
		if diff := math.Abs(batch[i].P - res.P); diff > 5*(batch[i].StdErr()+res.StdErr()) {
			t.Fatalf("beta %v: batch %v and per-query %v disagree beyond their joint error", betas[i], batch[i].P, res.P)
		}
	}
	if batchSteps*5 > perQuery {
		t.Fatalf("batch spent %d steps, per-query %d — want >= 5x sharing", batchSteps, perQuery)
	}
	t.Logf("ladder: batch %d steps vs per-query %d (%.1fx)", batchSteps, perQuery, float64(perQuery)/float64(batchSteps))
}
